#include "udf/udf.h"

#include "common/string_util.h"

namespace jaguar {

Status UdfContext::ChargeCallback() {
  if (handler_ == nullptr) {
    return NotSupported("UDF made a callback but no handler is installed");
  }
  if (callback_quota_ != 0 && callbacks_made_ >= callback_quota_) {
    return ResourceExhausted(
        StringPrintf("UDF exceeded its callback quota of %llu",
                     static_cast<unsigned long long>(callback_quota_)));
  }
  ++callbacks_made_;
  return Status::OK();
}

Result<int64_t> UdfContext::Callback(int64_t kind, int64_t arg) {
  JAGUAR_RETURN_IF_ERROR(ChargeCallback());
  return handler_->Callback(kind, arg);
}

Result<std::vector<uint8_t>> UdfContext::FetchBytes(int64_t handle,
                                                    uint64_t offset,
                                                    uint64_t len) {
  JAGUAR_RETURN_IF_ERROR(ChargeCallback());
  return handler_->FetchBytes(handle, offset, len);
}

NativeUdfRegistry* NativeUdfRegistry::Global() {
  static NativeUdfRegistry* registry = new NativeUdfRegistry();
  return registry;
}

Status NativeUdfRegistry::Register(NativeUdfEntry entry) {
  const std::string key = ToLower(entry.name);
  if (entry.fn == nullptr) {
    return InvalidArgument("native UDF '" + entry.name + "' has no function");
  }
  if (entries_.count(key) != 0) {
    return AlreadyExists("native UDF '" + entry.name + "' already registered");
  }
  entries_[key] = std::move(entry);
  return Status::OK();
}

Result<const NativeUdfEntry*> NativeUdfRegistry::Lookup(
    const std::string& name) const {
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return NotFound("no native UDF named '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> NativeUdfRegistry::List() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) names.push_back(entry.name);
  return names;
}

Status CheckUdfArgs(const std::string& name,
                    const std::vector<TypeId>& arg_types,
                    const std::vector<Value>& args) {
  if (args.size() != arg_types.size()) {
    return InvalidArgument(StringPrintf("UDF %s expects %zu arguments, got %zu",
                                        name.c_str(), arg_types.size(),
                                        args.size()));
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].is_null()) continue;
    TypeId want = arg_types[i];
    TypeId got = args[i].type();
    const bool widened = want == TypeId::kDouble && got == TypeId::kInt;
    if (got != want && !widened) {
      return InvalidArgument(StringPrintf(
          "UDF %s argument %zu expects %s, got %s", name.c_str(), i,
          TypeIdToString(want), TypeIdToString(got)));
    }
  }
  return Status::OK();
}

Result<Value> IntegratedNativeRunner::Invoke(const std::vector<Value>& args,
                                             UdfContext* ctx) {
  JAGUAR_RETURN_IF_ERROR(CheckUdfArgs(entry_->name, entry_->arg_types, args));
  Value out;
  JAGUAR_RETURN_IF_ERROR(entry_->fn(args, ctx, &out));
  return out;
}

}  // namespace jaguar
