#include "udf/udf.h"

#include <cctype>

#include "common/bytes.h"
#include "common/string_util.h"

namespace jaguar {

namespace {

/// Process-wide memo hit/miss counters (the cache is per runner, the
/// economics are global).
obs::Counter* MemoHits() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("udf.memo.hits");
  return c;
}
obs::Counter* MemoMisses() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("udf.memo.misses");
  return c;
}

}  // namespace

std::string UdfMemoCache::KeyFor(const std::vector<Value>& args) {
  BufferWriter w;
  w.PutU32(static_cast<uint32_t>(args.size()));
  for (const Value& v : args) v.WriteTo(&w);
  return std::string(reinterpret_cast<const char*>(w.buffer().data()),
                     w.size());
}

std::optional<Value> UdfMemoCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

size_t UdfMemoCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

void UdfMemoCache::Insert(const std::string& key, const Value& result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (index_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, result);
  index_[key] = lru_.begin();
}

Status UdfContext::ChargeCallback() {
  if (handler_ == nullptr) {
    return NotSupported("UDF made a callback but no handler is installed");
  }
  if (callback_quota_ != 0 && callbacks_made_ >= callback_quota_) {
    return ResourceExhausted(
        StringPrintf("UDF exceeded its callback quota of %llu",
                     static_cast<unsigned long long>(callback_quota_)));
  }
  ++callbacks_made_;
  static obs::Counter* callbacks =
      obs::MetricsRegistry::Global()->GetCounter("udf.callbacks");
  callbacks->Add();
  return Status::OK();
}

Result<int64_t> UdfContext::Callback(int64_t kind, int64_t arg) {
  JAGUAR_RETURN_IF_ERROR(ChargeCallback());
  return handler_->Callback(kind, arg);
}

Result<std::vector<uint8_t>> UdfContext::FetchBytes(int64_t handle,
                                                    uint64_t offset,
                                                    uint64_t len) {
  JAGUAR_RETURN_IF_ERROR(ChargeCallback());
  return handler_->FetchBytes(handle, offset, len);
}

NativeUdfRegistry* NativeUdfRegistry::Global() {
  static NativeUdfRegistry* registry = new NativeUdfRegistry();
  return registry;
}

Status NativeUdfRegistry::Register(NativeUdfEntry entry) {
  const std::string key = ToLower(entry.name);
  if (entry.fn == nullptr) {
    return InvalidArgument("native UDF '" + entry.name + "' has no function");
  }
  if (entries_.count(key) != 0) {
    return AlreadyExists("native UDF '" + entry.name + "' already registered");
  }
  entries_[key] = std::move(entry);
  return Status::OK();
}

Result<const NativeUdfEntry*> NativeUdfRegistry::Lookup(
    const std::string& name) const {
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return NotFound("no native UDF named '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> NativeUdfRegistry::List() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) names.push_back(entry.name);
  return names;
}

Status CheckUdfArgs(const std::string& name,
                    const std::vector<TypeId>& arg_types,
                    const std::vector<Value>& args) {
  if (args.size() != arg_types.size()) {
    return InvalidArgument(StringPrintf("UDF %s expects %zu arguments, got %zu",
                                        name.c_str(), arg_types.size(),
                                        args.size()));
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].is_null()) continue;
    TypeId want = arg_types[i];
    TypeId got = args[i].type();
    const bool widened = want == TypeId::kDouble && got == TypeId::kInt;
    if (got != want && !widened) {
      return InvalidArgument(StringPrintf(
          "UDF %s argument %zu expects %s, got %s", name.c_str(), i,
          TypeIdToString(want), TypeIdToString(got)));
    }
  }
  return Status::OK();
}

std::string UdfRunner::DesignMetricKey(const std::string& label) {
  std::string key;
  key.reserve(label.size());
  for (char c : label) {
    if (c == '+') {
      key.push_back('p');
    } else if (c == '-') {
      key.push_back('_');
    } else {
      key.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return key;
}

void UdfRunner::EnsureMetrics() {
  std::call_once(metrics_once_, [this] {
    obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
    const std::string base = "udf." + DesignMetricKey(design_label()) + ".";
    invocations_ = reg->GetCounter(base + "invocations");
    failures_ = reg->GetCounter(base + "failures");
    arg_bytes_ = reg->GetCounter(base + "arg_bytes");
    result_bytes_ = reg->GetCounter(base + "result_bytes");
    latency_ns_ = reg->GetHistogram(base + "latency_ns");
  });
}

Result<Value> UdfRunner::InvokeCounted(const std::vector<Value>& args,
                                       UdfContext* ctx) {
  invocations_->Add();
  uint64_t in_bytes = 0;
  for (const Value& v : args) in_bytes += v.SerializedSize();
  arg_bytes_->Add(in_bytes);

  obs::Timer timer(latency_ns_);
  Result<Value> result = DoInvoke(args, ctx);
  if (result.ok()) {
    result_bytes_->Add(result->SerializedSize());
  } else {
    failures_->Add();
  }
  if (outcome_listener_) outcome_listener_(result.status());
  return result;
}

Result<Value> UdfRunner::Invoke(const std::vector<Value>& args,
                                UdfContext* ctx) {
  // Fail fast once the query deadline has passed: no design should start a
  // fresh boundary crossing for a query that is already dead.
  if (ctx != nullptr) JAGUAR_RETURN_IF_ERROR(ctx->CheckDeadline());
  EnsureMetrics();
  if (memo_ == nullptr) return InvokeCounted(args, ctx);
  const std::string key = UdfMemoCache::KeyFor(args);
  if (std::optional<Value> hit = memo_->Lookup(key)) {
    MemoHits()->Add();
    return *std::move(hit);
  }
  MemoMisses()->Add();
  const uint64_t callbacks_before = ctx != nullptr ? ctx->callbacks_made() : 0;
  Result<Value> result = InvokeCounted(args, ctx);
  // Memoize only callback-free invocations: a callback makes the result
  // server-state-dependent and is itself an observable event.
  if (result.ok() &&
      (ctx == nullptr || ctx->callbacks_made() == callbacks_before)) {
    memo_->Insert(key, *result);
  }
  return result;
}

Result<std::vector<Value>> UdfRunner::DoInvokeBatch(
    const std::vector<std::vector<Value>>& args_batch, UdfContext* ctx) {
  std::vector<Value> results;
  results.reserve(args_batch.size());
  for (const std::vector<Value>& args : args_batch) {
    JAGUAR_ASSIGN_OR_RETURN(Value v, DoInvoke(args, ctx));
    results.push_back(std::move(v));
  }
  return results;
}

Result<std::vector<Value>> UdfRunner::InvokeBatchCounted(
    const std::vector<std::vector<Value>>& args_batch, UdfContext* ctx) {
  static obs::Counter* batch_invocations =
      obs::MetricsRegistry::Global()->GetCounter("udf.batch.invocations");
  static obs::Counter* batch_items =
      obs::MetricsRegistry::Global()->GetCounter("udf.batch.items");
  batch_invocations->Add();
  batch_items->Add(args_batch.size());
  invocations_->Add(args_batch.size());
  uint64_t in_bytes = 0;
  for (const std::vector<Value>& args : args_batch) {
    for (const Value& v : args) in_bytes += v.SerializedSize();
  }
  arg_bytes_->Add(in_bytes);

  obs::Timer timer(latency_ns_);
  Result<std::vector<Value>> results = DoInvokeBatch(args_batch, ctx);
  if (results.ok()) {
    if (results->size() != args_batch.size()) {
      failures_->Add();
      Status mismatch = Internal(StringPrintf(
          "UDF batch returned %zu results for %zu argument rows",
          results->size(), args_batch.size()));
      if (outcome_listener_) outcome_listener_(mismatch);
      return mismatch;
    }
    uint64_t out_bytes = 0;
    for (const Value& v : *results) out_bytes += v.SerializedSize();
    result_bytes_->Add(out_bytes);
  } else {
    failures_->Add();
  }
  if (outcome_listener_) outcome_listener_(results.status());
  return results;
}

Result<std::vector<Value>> UdfRunner::InvokeBatch(
    const std::vector<std::vector<Value>>& args_batch, UdfContext* ctx) {
  if (args_batch.empty()) return std::vector<Value>();
  if (ctx != nullptr) JAGUAR_RETURN_IF_ERROR(ctx->CheckDeadline());
  EnsureMetrics();
  if (memo_ == nullptr) return InvokeBatchCounted(args_batch, ctx);

  std::vector<Value> results(args_batch.size());
  std::vector<std::string> keys(args_batch.size());
  std::vector<size_t> miss_rows;
  for (size_t row = 0; row < args_batch.size(); ++row) {
    keys[row] = UdfMemoCache::KeyFor(args_batch[row]);
    if (std::optional<Value> hit = memo_->Lookup(keys[row])) {
      MemoHits()->Add();
      results[row] = *std::move(hit);
    } else {
      MemoMisses()->Add();
      miss_rows.push_back(row);
    }
  }
  if (miss_rows.empty()) return results;

  std::vector<std::vector<Value>> miss_batch;
  miss_batch.reserve(miss_rows.size());
  for (size_t row : miss_rows) miss_batch.push_back(args_batch[row]);
  const uint64_t callbacks_before = ctx != nullptr ? ctx->callbacks_made() : 0;
  JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> miss_results,
                          InvokeBatchCounted(miss_batch, ctx));
  // Callbacks cannot be attributed to individual rows of a batch, so any
  // callback during the crossing makes the whole batch non-memoizable.
  const bool memoizable =
      ctx == nullptr || ctx->callbacks_made() == callbacks_before;
  for (size_t i = 0; i < miss_rows.size(); ++i) {
    if (memoizable) memo_->Insert(keys[miss_rows[i]], miss_results[i]);
    results[miss_rows[i]] = std::move(miss_results[i]);
  }
  return results;
}

Result<Value> IntegratedNativeRunner::DoInvoke(const std::vector<Value>& args,
                                               UdfContext* ctx) {
  JAGUAR_RETURN_IF_ERROR(CheckUdfArgs(entry_->name, entry_->arg_types, args));
  Value out;
  JAGUAR_RETURN_IF_ERROR(entry_->fn(args, ctx, &out));
  return out;
}

}  // namespace jaguar
