#include "udf/udf.h"

#include <cctype>

#include "common/string_util.h"

namespace jaguar {

Status UdfContext::ChargeCallback() {
  if (handler_ == nullptr) {
    return NotSupported("UDF made a callback but no handler is installed");
  }
  if (callback_quota_ != 0 && callbacks_made_ >= callback_quota_) {
    return ResourceExhausted(
        StringPrintf("UDF exceeded its callback quota of %llu",
                     static_cast<unsigned long long>(callback_quota_)));
  }
  ++callbacks_made_;
  static obs::Counter* callbacks =
      obs::MetricsRegistry::Global()->GetCounter("udf.callbacks");
  callbacks->Add();
  return Status::OK();
}

Result<int64_t> UdfContext::Callback(int64_t kind, int64_t arg) {
  JAGUAR_RETURN_IF_ERROR(ChargeCallback());
  return handler_->Callback(kind, arg);
}

Result<std::vector<uint8_t>> UdfContext::FetchBytes(int64_t handle,
                                                    uint64_t offset,
                                                    uint64_t len) {
  JAGUAR_RETURN_IF_ERROR(ChargeCallback());
  return handler_->FetchBytes(handle, offset, len);
}

NativeUdfRegistry* NativeUdfRegistry::Global() {
  static NativeUdfRegistry* registry = new NativeUdfRegistry();
  return registry;
}

Status NativeUdfRegistry::Register(NativeUdfEntry entry) {
  const std::string key = ToLower(entry.name);
  if (entry.fn == nullptr) {
    return InvalidArgument("native UDF '" + entry.name + "' has no function");
  }
  if (entries_.count(key) != 0) {
    return AlreadyExists("native UDF '" + entry.name + "' already registered");
  }
  entries_[key] = std::move(entry);
  return Status::OK();
}

Result<const NativeUdfEntry*> NativeUdfRegistry::Lookup(
    const std::string& name) const {
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return NotFound("no native UDF named '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> NativeUdfRegistry::List() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) names.push_back(entry.name);
  return names;
}

Status CheckUdfArgs(const std::string& name,
                    const std::vector<TypeId>& arg_types,
                    const std::vector<Value>& args) {
  if (args.size() != arg_types.size()) {
    return InvalidArgument(StringPrintf("UDF %s expects %zu arguments, got %zu",
                                        name.c_str(), arg_types.size(),
                                        args.size()));
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].is_null()) continue;
    TypeId want = arg_types[i];
    TypeId got = args[i].type();
    const bool widened = want == TypeId::kDouble && got == TypeId::kInt;
    if (got != want && !widened) {
      return InvalidArgument(StringPrintf(
          "UDF %s argument %zu expects %s, got %s", name.c_str(), i,
          TypeIdToString(want), TypeIdToString(got)));
    }
  }
  return Status::OK();
}

std::string UdfRunner::DesignMetricKey(const std::string& label) {
  std::string key;
  key.reserve(label.size());
  for (char c : label) {
    if (c == '+') {
      key.push_back('p');
    } else if (c == '-') {
      key.push_back('_');
    } else {
      key.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return key;
}

void UdfRunner::EnsureMetrics() {
  std::call_once(metrics_once_, [this] {
    obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
    const std::string base = "udf." + DesignMetricKey(design_label()) + ".";
    invocations_ = reg->GetCounter(base + "invocations");
    failures_ = reg->GetCounter(base + "failures");
    arg_bytes_ = reg->GetCounter(base + "arg_bytes");
    result_bytes_ = reg->GetCounter(base + "result_bytes");
    latency_ns_ = reg->GetHistogram(base + "latency_ns");
  });
}

Result<Value> UdfRunner::Invoke(const std::vector<Value>& args,
                                UdfContext* ctx) {
  EnsureMetrics();
  invocations_->Add();
  uint64_t in_bytes = 0;
  for (const Value& v : args) in_bytes += v.SerializedSize();
  arg_bytes_->Add(in_bytes);

  obs::Timer timer(latency_ns_);
  Result<Value> result = DoInvoke(args, ctx);
  if (result.ok()) {
    result_bytes_->Add(result->SerializedSize());
  } else {
    failures_->Add();
  }
  return result;
}

Result<Value> IntegratedNativeRunner::DoInvoke(const std::vector<Value>& args,
                                               UdfContext* ctx) {
  JAGUAR_RETURN_IF_ERROR(CheckUdfArgs(entry_->name, entry_->arg_types, args));
  Value out;
  JAGUAR_RETURN_IF_ERROR(entry_->fn(args, ctx, &out));
  return out;
}

}  // namespace jaguar
