#include "udf/executor_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace jaguar {

namespace {

obs::Counter* PoolSpawns() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("udf.pool.spawns");
  return c;
}
obs::Counter* PoolAcquires() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("udf.pool.acquires");
  return c;
}
obs::Counter* PoolWaits() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("udf.pool.waits");
  return c;
}
obs::Counter* PoolDiscards() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("udf.pool.discards");
  return c;
}
obs::Counter* PoolOrphans() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("udf.pool.orphans");
  return c;
}

}  // namespace

ExecutorPool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_), alive_(std::move(other.alive_)),
      executor_(std::move(other.executor_)) {
  other.pool_ = nullptr;
}

ExecutorPool::Lease& ExecutorPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Settle();
    pool_ = other.pool_;
    alive_ = std::move(other.alive_);
    executor_ = std::move(other.executor_);
    other.pool_ = nullptr;
  }
  return *this;
}

ExecutorPool::Lease::~Lease() { Settle(); }

void ExecutorPool::Lease::Settle() {
  if (executor_ == nullptr) return;
  if (std::shared_ptr<ExecutorPool*> alive = alive_.lock()) {
    pool_->Return(std::move(executor_));
  } else {
    // The pool died first: its destructor already SIGKILLed and reaped this
    // child through the registry, so just destroy the husk (its Shutdown
    // no-ops on pid -1).
    executor_.reset();
  }
  pool_ = nullptr;
}

void ExecutorPool::Lease::Discard() {
  if (executor_ == nullptr) return;
  // The child may be wedged rather than dead; SIGKILL so the reap cannot
  // hang on a shutdown handshake.
  executor_->Kill();
  if (std::shared_ptr<ExecutorPool*> alive = alive_.lock()) {
    pool_->OnDiscard(executor_.get());
  }
  executor_.reset();
  pool_ = nullptr;
}

ExecutorPool::ExecutorPool(SpawnFn spawn, size_t max_size)
    : spawn_(std::move(spawn)), max_size_(std::max<size_t>(1, max_size)) {}

ExecutorPool::~ExecutorPool() {
  // Expire the liveness token first: any lease settling from here on skips
  // pool bookkeeping entirely.
  alive_.reset();
  std::lock_guard<std::mutex> lock(mutex_);
  for (ipc::RemoteExecutor* executor : registry_) {
    const bool is_idle =
        std::any_of(idle_.begin(), idle_.end(),
                    [executor](const std::unique_ptr<ipc::RemoteExecutor>& e) {
                      return e.get() == executor;
                    });
    if (is_idle) continue;
    // Leased but never returned — kill and reap through the registry pointer
    // so no zombie child outlives the pool. The lease still owns the object
    // and will destroy it later; Kill() leaves it inert (pid -1).
    executor->Kill();
    ++orphans_reaped_;
    PoolOrphans()->Add();
  }
  // Idle executors shut down via the graceful handshake as their owning
  // pointers are destroyed.
  idle_.clear();
}

Result<std::unique_ptr<ipc::RemoteExecutor>> ExecutorPool::SpawnLocked() {
  JAGUAR_ASSIGN_OR_RETURN(std::unique_ptr<ipc::RemoteExecutor> executor,
                          spawn_());
  if (timeout_seconds_ != 0) {
    executor->channel()->set_timeout_seconds(timeout_seconds_);
  }
  ++live_;
  registry_.push_back(executor.get());
  PoolSpawns()->Add();
  return executor;
}

Result<ExecutorPool::Lease> ExecutorPool::Acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  PoolAcquires()->Add();
  bool waited = false;
  while (true) {
    if (!idle_.empty()) {
      std::unique_ptr<ipc::RemoteExecutor> executor = std::move(idle_.back());
      idle_.pop_back();
      return Lease(this, std::move(executor), alive_);
    }
    if (live_ < max_size_) {
      JAGUAR_ASSIGN_OR_RETURN(std::unique_ptr<ipc::RemoteExecutor> executor,
                              SpawnLocked());
      return Lease(this, std::move(executor), alive_);
    }
    if (!waited) {
      waited = true;
      PoolWaits()->Add();
    }
    cv_.wait(lock);
  }
}

Status ExecutorPool::Prewarm(size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t target = std::min(n, max_size_);
  while (live_ < target) {
    JAGUAR_ASSIGN_OR_RETURN(std::unique_ptr<ipc::RemoteExecutor> executor,
                            SpawnLocked());
    idle_.push_back(std::move(executor));
  }
  return Status::OK();
}

void ExecutorPool::set_timeout_seconds(int seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  timeout_seconds_ = seconds;
  for (ipc::RemoteExecutor* executor : registry_) {
    executor->channel()->set_timeout_seconds(seconds);
  }
}

pid_t ExecutorPool::first_child_pid() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry_.empty()) return -1;
  return registry_.front()->child_pid();
}

std::vector<pid_t> ExecutorPool::executor_pids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<pid_t> pids;
  pids.reserve(registry_.size());
  for (ipc::RemoteExecutor* executor : registry_) {
    pids.push_back(executor->child_pid());
  }
  return pids;
}

size_t ExecutorPool::live_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_;
}

void ExecutorPool::Return(std::unique_ptr<ipc::RemoteExecutor> executor) {
  std::lock_guard<std::mutex> lock(mutex_);
  idle_.push_back(std::move(executor));
  cv_.notify_one();
}

void ExecutorPool::OnDiscard(ipc::RemoteExecutor* executor) {
  std::lock_guard<std::mutex> lock(mutex_);
  registry_.erase(std::remove(registry_.begin(), registry_.end(), executor),
                  registry_.end());
  --live_;
  PoolDiscards()->Add();
  // A waiter can now fork a replacement (live_ dropped below the cap).
  cv_.notify_one();
}

}  // namespace jaguar
