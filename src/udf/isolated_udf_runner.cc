#include "udf/isolated_udf_runner.h"

#include "common/bytes.h"
#include "common/string_util.h"
#include "jvm/vm.h"
#include "obs/metrics.h"
#include "udf/jvm_udf_runner.h"

namespace jaguar {

namespace {

/// Shared-memory request messages that carried more than one argument row —
/// the direct count of Section 2.5 amortized crossings.
obs::Counter* BatchMessages() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("ipc.batch_messages");
  return c;
}

/// Chunks whose serialization overlapped the child's execution of the
/// previous chunk (the double-buffered IPC pipeline).
obs::Counter* PipelinedChunks() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("ipc.pipelined_chunks");
  return c;
}

/// Request chunks serialized directly into the shared-memory ring (no
/// intermediate request buffer) on the zero-copy transport.
obs::Counter* ZeroCopyBatches() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("ipc.ring.zero_copy_batches");
  return c;
}

/// Executor children SIGKILLed because their query's deadline passed while
/// they were still executing (the isolated designs' "stop button", Section 4).
obs::Counter* WatchdogKills() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("udf.watchdog.kills");
  return c;
}

Result<std::vector<Value>> RunChunkedBatch(
    ipc::RemoteExecutor* executor,
    const std::vector<std::vector<Value>>& args_batch, size_t header_bytes,
    size_t shm_capacity, UdfContext* ctx,
    const std::function<void(BufferWriter*)>& write_header);

/// Runs one chunked batch through a leased executor with the query deadline
/// (if any) armed on the lease's channel, then settles the lease:
///   - DeadlineExceeded: the child is still chewing on the UDF (or wedged) —
///     the watchdog SIGKILLs it via Discard and the pool respawns lazily.
///     Only this worker's lease dies; concurrent workers' leases are healthy.
///   - IoError: the child died on its own; discard as before.
/// Shared by Designs 2 (IC++) and 4 (IJNI) — the two "kill the process"
/// cells of Table 1's security column.
Result<std::vector<Value>> RunGuardedBatch(
    ExecutorPool::Lease* lease,
    const std::vector<std::vector<Value>>& args_batch, size_t header_bytes,
    size_t shm_capacity, UdfContext* ctx,
    const std::function<void(BufferWriter*)>& write_header) {
  ipc::Channel* channel = lease->get()->channel();
  channel->set_parent_deadline(ctx != nullptr ? ctx->deadline() : nullptr);
  Result<std::vector<Value>> results = RunChunkedBatch(
      lease->get(), args_batch, header_bytes, shm_capacity, ctx, write_header);
  channel->set_parent_deadline(nullptr);
  if (!results.ok()) {
    if (results.status().IsDeadlineExceeded()) {
      WatchdogKills()->Add();
      lease->Discard();
    } else if (results.status().IsIoError()) {
      lease->Discard();
    }
  }
  return results;
}

/// Bytes one argument row adds to a request payload (u32 arg count + each
/// value's wire encoding).
size_t ArgRowSerializedSize(const std::vector<Value>& args) {
  size_t bytes = 4;
  for (const Value& v : args) bytes += v.SerializedSize();
  return bytes;
}

/// Greedy chunking: the last row index (exclusive) after `begin` such that
/// the chunk's serialized request still fits the shared-memory segment.
/// Always includes at least one row — a single oversized row fails with
/// InvalidArgument, exactly as the scalar path always has.
size_t BatchChunkEnd(const std::vector<std::vector<Value>>& batch,
                     size_t begin, size_t header_bytes, size_t shm_capacity) {
  // Slack for the count prefix and the channel's own framing.
  constexpr size_t kSlack = 256;
  const size_t budget =
      shm_capacity > header_bytes + kSlack ? shm_capacity - header_bytes -
                                                 kSlack
                                           : 0;
  size_t end = begin;
  size_t used = 0;
  while (end < batch.size()) {
    const size_t row_bytes = ArgRowSerializedSize(batch[end]);
    if (end > begin && used + row_bytes > budget) break;
    used += row_bytes;
    ++end;
  }
  return end;
}

/// Decodes a count-prefixed batch of result values, checking the count
/// against what the request carried. `payload` may be an in-place view into
/// transport memory (values copy out as they decode).
Result<std::vector<Value>> DecodeResultBatch(Slice payload, size_t expected) {
  BufferReader r(payload);
  JAGUAR_ASSIGN_OR_RETURN(uint32_t count, BatchCodec::ReadCount(&r));
  if (count != expected) {
    return Corruption(StringPrintf(
        "executor returned %u results for a batch of %zu",
        static_cast<unsigned>(count), expected));
  }
  std::vector<Value> results;
  results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    JAGUAR_ASSIGN_OR_RETURN(Value v, Value::ReadFrom(&r));
    results.push_back(std::move(v));
  }
  return results;
}

// Callback wire format (child → parent payloads):
//   op 0 (Callback):  u8 0 | i64 kind | i64 arg        reply: i64
//   op 1 (FetchBytes): u8 1 | i64 handle | u64 off | u64 len
//                                                      reply: len-prefixed
constexpr uint8_t kOpCallback = 0;
constexpr uint8_t kOpFetch = 1;

/// Child-side handler that forwards UDF callbacks to the parent process over
/// the channel (each callback is a full round trip — the cost Figure 8
/// shows dominating IC++).
///
/// On the ring transport the parent may have pipelined the *next* request
/// behind the callback reply (the to-child direction is FIFO), so the round
/// trip must set aside any kRequest frame it sees and keep waiting — the
/// stash is drained by the child loop's next receive.
class ForwardingCallbackHandler : public UdfCallbackHandler {
 public:
  explicit ForwardingCallbackHandler(ipc::Channel* channel)
      : channel_(channel) {}

  Result<int64_t> Callback(int64_t kind, int64_t arg) override {
    BufferWriter w;
    w.PutU8(kOpCallback);
    w.PutI64(kind);
    w.PutI64(arg);
    JAGUAR_ASSIGN_OR_RETURN(std::vector<uint8_t> reply, RoundTrip(w.AsSlice()));
    BufferReader r((Slice(reply)));
    return r.ReadI64();
  }

  Result<std::vector<uint8_t>> FetchBytes(int64_t handle, uint64_t offset,
                                          uint64_t len) override {
    BufferWriter w;
    w.PutU8(kOpFetch);
    w.PutI64(handle);
    w.PutU64(offset);
    w.PutU64(len);
    JAGUAR_ASSIGN_OR_RETURN(std::vector<uint8_t> reply, RoundTrip(w.AsSlice()));
    BufferReader r((Slice(reply)));
    JAGUAR_ASSIGN_OR_RETURN(Slice bytes, r.ReadLengthPrefixed());
    return bytes.ToVector();
  }

 private:
  Result<std::vector<uint8_t>> RoundTrip(Slice payload) {
    JAGUAR_RETURN_IF_ERROR(
        channel_->SendToParent(ipc::MsgType::kCallbackRequest, payload));
    while (true) {
      JAGUAR_ASSIGN_OR_RETURN(auto msg, channel_->ReceiveFreshInChild());
      if (msg.first == ipc::MsgType::kRequest) {
        // A pipelined next request overtook the callback reply; park it for
        // the child loop and keep waiting.
        channel_->StashInChild(msg.first, std::move(msg.second));
        continue;
      }
      if (msg.first == ipc::MsgType::kError) {
        return ipc::DecodeStatus(Slice(msg.second));
      }
      if (msg.first != ipc::MsgType::kCallbackReply) {
        return Internal("unexpected message type for callback reply");
      }
      return std::move(msg.second);
    }
  }

  ipc::Channel* channel_;
};

/// Parent-side bridge: decodes a child's callback payload and services it
/// through the invoking UdfContext (shared by Designs 2 and 4).
ipc::RemoteExecutor::CallbackHandler MakeParentCallbackBridge(
    UdfContext* ctx) {
  return [ctx](Slice payload) -> Result<std::vector<uint8_t>> {
    BufferReader r(payload);
    JAGUAR_ASSIGN_OR_RETURN(uint8_t op, r.ReadU8());
    if (op == kOpCallback) {
      JAGUAR_ASSIGN_OR_RETURN(int64_t kind, r.ReadI64());
      JAGUAR_ASSIGN_OR_RETURN(int64_t arg, r.ReadI64());
      JAGUAR_ASSIGN_OR_RETURN(int64_t result, ctx->Callback(kind, arg));
      BufferWriter reply;
      reply.PutI64(result);
      return reply.Release();
    }
    if (op == kOpFetch) {
      JAGUAR_ASSIGN_OR_RETURN(int64_t handle, r.ReadI64());
      JAGUAR_ASSIGN_OR_RETURN(uint64_t offset, r.ReadU64());
      JAGUAR_ASSIGN_OR_RETURN(uint64_t len, r.ReadU64());
      JAGUAR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                              ctx->FetchBytes(handle, offset, len));
      BufferWriter reply;
      reply.PutLengthPrefixed(Slice(bytes));
      return reply.Release();
    }
    return Corruption("unknown callback op from executor child");
  };
}

/// One precomputed request chunk: rows [begin, end) and the exact serialized
/// request size (header + count prefix + rows).
struct ChunkPlan {
  size_t begin;
  size_t end;
  size_t len;
};

/// Serializes rows [c.begin, c.end) of `args_batch` through `w`, which may
/// back onto ring memory (fixed) or a private vector (owned).
Status SerializeChunk(const ChunkPlan& c,
                      const std::vector<std::vector<Value>>& args_batch,
                      const std::function<void(BufferWriter*)>& write_header,
                      BufferWriter* w) {
  write_header(w);
  BatchCodec::WriteCount(w, c.end - c.begin);
  for (size_t row = c.begin; row < c.end; ++row) {
    w->PutU32(static_cast<uint32_t>(args_batch[row].size()));
    for (const Value& v : args_batch[row]) v.WriteTo(w);
  }
  if (w->overflowed() || w->size() != c.len) {
    return Internal("serialized chunk size disagrees with precomputed size");
  }
  return Status::OK();
}

/// Ships `args_batch` through a leased executor, chunked to the shm segment
/// and pipelined: while the child executes chunk k, the parent serializes
/// chunk k+1, so for multi-chunk batches the serialization cost hides behind
/// the child's execution (double buffering across the process boundary).
///
/// Two paths, chosen by the executor's transport:
///   - zero-copy (ring): each chunk's exact size is precomputed, the chunk
///     is serialized *directly into the to-child ring* and committed, and —
///     because the ring holds two maximal frames — chunk k+1 is committed
///     while chunk k is still executing. Results decode in place from the
///     ring view. No request or reply buffer exists in the parent.
///   - message: the classic flow — serialize into a private buffer, send
///     (copy into shm), serialize the next chunk while the child works.
///
/// `write_header` prepends the design-specific request header to each chunk;
/// `header_bytes` is its serialized size including the count prefix (for the
/// chunking budget and the exact-size precomputation).
Result<std::vector<Value>> RunChunkedBatch(
    ipc::RemoteExecutor* executor,
    const std::vector<std::vector<Value>>& args_batch, size_t header_bytes,
    size_t shm_capacity, UdfContext* ctx,
    const std::function<void(BufferWriter*)>& write_header) {
  std::vector<Value> results;
  results.reserve(args_batch.size());

  const bool zero_copy = executor->channel()->zero_copy() &&
                         executor->send_queue_depth() > 1;
  if (zero_copy) {
    // Plan every chunk upfront: exact sizes let us reserve exactly what each
    // chunk needs in the ring, and an oversized single row fails before
    // anything has been committed (mid-pipeline failure would leave a chunk
    // in flight).
    std::vector<ChunkPlan> chunks;
    size_t begin = 0;
    while (begin < args_batch.size()) {
      const size_t end =
          BatchChunkEnd(args_batch, begin, header_bytes, shm_capacity);
      size_t len = header_bytes;
      for (size_t row = begin; row < end; ++row) {
        len += ArgRowSerializedSize(args_batch[row]);
      }
      if (len > shm_capacity) {
        return InvalidArgument(StringPrintf(
            "serialized request (%zu bytes) exceeds channel capacity (%zu)",
            len, shm_capacity));
      }
      chunks.push_back(ChunkPlan{begin, end, len});
      begin = end;
    }

    auto commit = [&](const ChunkPlan& c) -> Status {
      if (c.end - c.begin > 1) BatchMessages()->Add();
      JAGUAR_ASSIGN_OR_RETURN(uint8_t* buf, executor->PrepareRequest(c.len));
      BufferWriter w(buf, c.len);
      JAGUAR_RETURN_IF_ERROR(SerializeChunk(c, args_batch, write_header, &w));
      JAGUAR_RETURN_IF_ERROR(executor->BeginExecutePrepared(c.len));
      ZeroCopyBatches()->Add();
      return Status::OK();
    };

    JAGUAR_RETURN_IF_ERROR(commit(chunks[0]));
    for (size_t i = 0; i < chunks.size(); ++i) {
      if (i + 1 < chunks.size()) {
        // Chunk i is in flight; serialize-and-commit chunk i+1 straight into
        // the ring while the child works on i.
        JAGUAR_RETURN_IF_ERROR(commit(chunks[i + 1]));
        PipelinedChunks()->Add();
      }
      const size_t expected = chunks[i].end - chunks[i].begin;
      JAGUAR_RETURN_IF_ERROR(executor->FinishExecuteWith(
          MakeParentCallbackBridge(ctx),
          [&results, expected](Slice payload) -> Status {
            JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> chunk,
                                    DecodeResultBatch(payload, expected));
            for (Value& v : chunk) results.push_back(std::move(v));
            return Status::OK();
          }));
    }
    return results;
  }

  // Message transport: serialize into a private buffer, send, overlap the
  // next chunk's serialization with the child's execution.
  auto serialize = [&](size_t chunk_begin, size_t chunk_end) {
    BufferWriter w;
    write_header(&w);
    BatchCodec::WriteCount(&w, chunk_end - chunk_begin);
    for (size_t row = chunk_begin; row < chunk_end; ++row) {
      w.PutU32(static_cast<uint32_t>(args_batch[row].size()));
      for (const Value& v : args_batch[row]) v.WriteTo(&w);
    }
    return w.Release();
  };

  size_t begin = 0;
  size_t end = BatchChunkEnd(args_batch, begin, header_bytes, shm_capacity);
  std::vector<uint8_t> request = serialize(begin, end);
  while (true) {
    if (end - begin > 1) BatchMessages()->Add();
    JAGUAR_RETURN_IF_ERROR(executor->BeginExecute(Slice(request)));

    // Chunk `begin..end` is now in flight; serialize the next chunk while
    // the child works. (Callbacks the child issues meanwhile just wait in
    // the channel until FinishExecute services them.)
    const size_t next_begin = end;
    size_t next_end = next_begin;
    std::vector<uint8_t> next_request;
    if (next_begin < args_batch.size()) {
      next_end =
          BatchChunkEnd(args_batch, next_begin, header_bytes, shm_capacity);
      next_request = serialize(next_begin, next_end);
      PipelinedChunks()->Add();
    }

    JAGUAR_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                            executor->FinishExecute(
                                MakeParentCallbackBridge(ctx)));
    JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> chunk,
                            DecodeResultBatch(Slice(reply), end - begin));
    for (Value& v : chunk) results.push_back(std::move(v));

    if (next_begin >= args_batch.size()) break;
    begin = next_begin;
    end = next_end;
    request = std::move(next_request);
  }
  return results;
}

/// Reads one argument row (`u32 nargs | values`) off a batch request.
Result<std::vector<Value>> ReadArgRow(BufferReader* r) {
  JAGUAR_ASSIGN_OR_RETURN(uint32_t nargs, r->ReadU32());
  std::vector<Value> args;
  args.reserve(nargs);
  for (uint32_t i = 0; i < nargs; ++i) {
    JAGUAR_ASSIGN_OR_RETURN(Value v, Value::ReadFrom(r));
    args.push_back(std::move(v));
  }
  return args;
}

/// Ships a computed result batch back to the parent. On the ring transport
/// the values serialize directly into the to-parent ring and the response is
/// marked sent (the child loop skips its own send); otherwise they serialize
/// into an owned buffer the loop copies out. Must only be called once every
/// result value is finished: a held ring reservation would block the child's
/// own callback sends behind it.
Result<std::vector<uint8_t>> ShipResultBatch(ipc::Channel* channel,
                                             const std::vector<Value>& outs) {
  size_t len = 4;
  for (const Value& v : outs) len += v.SerializedSize();
  if (channel->zero_copy() && len <= channel->data_capacity()) {
    JAGUAR_ASSIGN_OR_RETURN(uint8_t* buf, channel->PrepareToParent(len));
    BufferWriter w(buf, len);
    BatchCodec::WriteCount(&w, outs.size());
    for (const Value& v : outs) v.WriteTo(&w);
    if (w.overflowed() || w.size() != len) {
      return Internal("serialized result size disagrees with precomputed size");
    }
    JAGUAR_RETURN_IF_ERROR(
        channel->CommitToParent(ipc::MsgType::kResult, len));
    channel->MarkResponseSent();
    return std::vector<uint8_t>();
  }
  BufferWriter w;
  BatchCodec::WriteCount(&w, outs.size());
  for (const Value& v : outs) v.WriteTo(&w);
  return w.Release();
}

/// Runs inside the executor child for each request: a count-prefixed batch
/// of argument rows, each applied with a *fresh* UdfContext (so the
/// per-invocation callback quota means the same thing in both modes). One
/// failing row fails the whole request — the parent fails the batch.
///
/// `request` is an in-place view into transport memory: all rows decode into
/// owned Values first, then the frame is released *before* any row executes
/// (decode-then-release), so callbacks and the pipelined next request can
/// flow through the ring while this batch runs.
Result<std::vector<uint8_t>> ChildHandleRequest(Slice request,
                                                ipc::Channel* channel) {
  BufferReader r(request);
  JAGUAR_ASSIGN_OR_RETURN(std::string impl_name, r.ReadString());
  JAGUAR_ASSIGN_OR_RETURN(uint32_t count, BatchCodec::ReadCount(&r));
  std::vector<std::vector<Value>> rows;
  rows.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> args, ReadArgRow(&r));
    rows.push_back(std::move(args));
  }
  channel->ReleaseInChild();

  // Resolve in the child's (fork-inherited) registry.
  JAGUAR_ASSIGN_OR_RETURN(const NativeUdfEntry* entry,
                          NativeUdfRegistry::Global()->Lookup(impl_name));
  ForwardingCallbackHandler callbacks(channel);
  std::vector<Value> outs;
  outs.reserve(rows.size());
  for (const std::vector<Value>& args : rows) {
    UdfContext ctx(&callbacks);
    Value out;
    JAGUAR_RETURN_IF_ERROR(entry->fn(args, &ctx, &out));
    outs.push_back(std::move(out));
  }
  return ShipResultBatch(channel, outs);
}

}  // namespace

Result<std::unique_ptr<IsolatedNativeRunner>> IsolatedNativeRunner::Spawn(
    const std::string& impl_name, TypeId return_type,
    std::vector<TypeId> arg_types, size_t shm_capacity, size_t pool_size,
    ipc::Transport transport) {
  // Fail fast in the parent if the function does not exist (the child would
  // only discover it at first request).
  JAGUAR_RETURN_IF_ERROR(
      NativeUdfRegistry::Global()->Lookup(impl_name).status());
  auto runner = std::unique_ptr<IsolatedNativeRunner>(
      new IsolatedNativeRunner());
  runner->impl_name_ = impl_name;
  runner->return_type_ = return_type;
  runner->arg_types_ = std::move(arg_types);
  runner->shm_capacity_ = shm_capacity;
  runner->pool_ = std::make_unique<ExecutorPool>(
      [shm_capacity, transport] {
        return ipc::RemoteExecutor::Spawn(shm_capacity, &ChildHandleRequest,
                                          transport);
      },
      pool_size);
  // Pre-spawn every executor now (runner creation happens on the query's
  // bind path, single-threaded) so no parallel worker forks mid-query.
  JAGUAR_RETURN_IF_ERROR(runner->pool_->Prewarm(pool_size));
  return runner;
}

void IsolatedNativeRunner::set_ipc_timeout_seconds(unsigned seconds) {
  pool_->set_timeout_seconds(static_cast<int>(seconds));
}

Result<Value> IsolatedNativeRunner::DoInvoke(const std::vector<Value>& args,
                                             UdfContext* ctx) {
  JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> results,
                          DoInvokeBatch({args}, ctx));
  return std::move(results[0]);
}

Result<std::vector<Value>> IsolatedNativeRunner::DoInvokeBatch(
    const std::vector<std::vector<Value>>& args_batch, UdfContext* ctx) {
  for (const std::vector<Value>& args : args_batch) {
    JAGUAR_RETURN_IF_ERROR(CheckUdfArgs(impl_name_, arg_types_, args));
  }
  JAGUAR_ASSIGN_OR_RETURN(ExecutorPool::Lease lease, pool_->Acquire());

  const size_t header_bytes = 4 + impl_name_.size() + 4;
  // A transport failure or deadline expiry means the child is dead or must
  // die; only this worker's batch fails, and the pool respawns later.
  return RunGuardedBatch(&lease, args_batch, header_bytes, shm_capacity_, ctx,
                         [this](BufferWriter* w) { w->PutString(impl_name_); });
}

UdfManager::RunnerFactory MakeIsolatedRunnerFactory(size_t shm_capacity,
                                                    size_t pool_size,
                                                    ipc::Transport transport) {
  return [shm_capacity, pool_size, transport](const UdfInfo& info)
             -> Result<std::unique_ptr<UdfRunner>> {
    JAGUAR_ASSIGN_OR_RETURN(
        std::unique_ptr<IsolatedNativeRunner> runner,
        IsolatedNativeRunner::Spawn(info.impl_name, info.return_type,
                                    info.arg_types, shm_capacity, pool_size,
                                    transport));
    return std::unique_ptr<UdfRunner>(std::move(runner));
  };
}

}  // namespace jaguar

// ---------------------------------------------------------------------------
// Design 4: isolated JagVM (IJNI)
// ---------------------------------------------------------------------------

namespace jaguar {

namespace {

/// Everything the executor child needs to run the UDF. Constructed in the
/// parent before fork(); the child inherits it (including the loaded,
/// verified class — JIT compilation happens lazily in the child).
struct IsolatedVmState {
  jvm::Jvm vm;
  std::unique_ptr<jvm::ClassLoader> loader;
  std::string class_name;
  std::string method_name;
  TypeId return_type;
  std::vector<TypeId> arg_types;
  jvm::ResourceLimits limits;
  jvm::SecurityManager security;
};

/// Marshals one argument row into a fresh ExecContext, calls the method,
/// and unmarshals the result. Callbacks flow UDF -> Jaguar.* native ->
/// UdfContext -> ForwardingCallbackHandler -> shm channel -> server: the VM
/// boundary *and* the process boundary.
Result<Value> ChildRunVmItem(IsolatedVmState* state,
                             const std::vector<Value>& args,
                             UdfContext* udf_ctx) {
  jvm::ExecContext exec(&state->vm, state->loader.get(), &state->security,
                        state->limits, udf_ctx);

  std::vector<int64_t> slots;
  slots.reserve(args.size());
  for (const Value& v : args) {
    switch (v.type()) {
      case TypeId::kInt:
        slots.push_back(v.AsInt());
        break;
      case TypeId::kBool:
        slots.push_back(v.AsBool() ? 1 : 0);
        break;
      case TypeId::kBytes: {
        JAGUAR_ASSIGN_OR_RETURN(jvm::ArrayObject * arr,
                                exec.NewByteArray(Slice(v.AsBytes())));
        slots.push_back(reinterpret_cast<int64_t>(arr));
        break;
      }
      default:
        return NotSupported("unsupported Design-4 UDF argument type");
    }
  }
  JAGUAR_ASSIGN_OR_RETURN(
      int64_t raw,
      exec.CallStatic(state->class_name, state->method_name, slots));

  switch (state->return_type) {
    case TypeId::kInt:
      return Value::Int(raw);
    case TypeId::kBool:
      return Value::Bool(raw != 0);
    case TypeId::kBytes:
      return Value::Bytes(jvm::ExecContext::ReadByteArray(
          reinterpret_cast<const jvm::ArrayObject*>(raw)));
    default:
      return Internal("unexpected Design-4 UDF return type");
  }
}

/// Runs one Design-4 request (a count-prefixed batch of argument rows)
/// inside the executor child. Each row gets a fresh UdfContext and
/// ExecContext — per-invocation quotas and heap state are identical to the
/// scalar protocol; only the process crossing is amortized. Same
/// decode-then-release discipline as ChildHandleRequest.
Result<std::vector<uint8_t>> ChildHandleVmRequest(
    IsolatedVmState* state, Slice request, ipc::Channel* channel) {
  BufferReader r(request);
  JAGUAR_ASSIGN_OR_RETURN(uint32_t count, BatchCodec::ReadCount(&r));
  std::vector<std::vector<Value>> rows;
  rows.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> args, ReadArgRow(&r));
    rows.push_back(std::move(args));
  }
  channel->ReleaseInChild();

  ForwardingCallbackHandler callbacks(channel);
  std::vector<Value> outs;
  outs.reserve(rows.size());
  for (const std::vector<Value>& args : rows) {
    UdfContext udf_ctx(&callbacks);
    JAGUAR_ASSIGN_OR_RETURN(Value out, ChildRunVmItem(state, args, &udf_ctx));
    outs.push_back(std::move(out));
  }
  return ShipResultBatch(channel, outs);
}

}  // namespace

Result<std::unique_ptr<IsolatedJvmRunner>> IsolatedJvmRunner::Spawn(
    const UdfInfo& info, jvm::ResourceLimits limits, size_t shm_capacity,
    size_t pool_size, ipc::Transport transport) {
  size_t dot = info.impl_name.find('.');
  if (dot == std::string::npos) {
    return InvalidArgument("Design-4 UDF entry point must be 'Class.method'");
  }

  auto state = std::make_shared<IsolatedVmState>();
  JAGUAR_RETURN_IF_ERROR(InstallJaguarNatives(&state->vm));
  state->loader =
      std::make_unique<jvm::ClassLoader>(state->vm.system_loader());
  JAGUAR_RETURN_IF_ERROR(state->loader->LoadClass(Slice(info.payload)).status());
  state->class_name = info.impl_name.substr(0, dot);
  state->method_name = info.impl_name.substr(dot + 1);
  state->return_type = info.return_type;
  state->arg_types = info.arg_types;
  state->limits = limits;
  state->security.Grant("udf.callback");
  state->security.Grant("udf.fetch");

  // Validate the entry point + declared signature (parent side, before any
  // query can hit a broken child). JvmUdfRunner::Create applies exactly the
  // checks we need; it also confirms the class loads into a namespace.
  JAGUAR_RETURN_IF_ERROR(
      JvmUdfRunner::Create(&state->vm, info, limits).status());

  auto runner = std::unique_ptr<IsolatedJvmRunner>(new IsolatedJvmRunner());
  runner->return_type_ = info.return_type;
  runner->arg_types_ = info.arg_types;
  runner->shm_capacity_ = shm_capacity;
  runner->handler_ = [state](Slice request, ipc::Channel* channel) {
    return ChildHandleVmRequest(state.get(), request, channel);
  };
  ipc::RemoteExecutor::RequestHandler handler = runner->handler_;
  runner->pool_ = std::make_unique<ExecutorPool>(
      [shm_capacity, handler, transport] {
        return ipc::RemoteExecutor::Spawn(shm_capacity, handler, transport);
      },
      pool_size);
  JAGUAR_RETURN_IF_ERROR(runner->pool_->Prewarm(pool_size));
  return runner;
}

void IsolatedJvmRunner::set_ipc_timeout_seconds(unsigned seconds) {
  pool_->set_timeout_seconds(static_cast<int>(seconds));
}

Result<Value> IsolatedJvmRunner::DoInvoke(const std::vector<Value>& args,
                                          UdfContext* ctx) {
  JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> results,
                          DoInvokeBatch({args}, ctx));
  return std::move(results[0]);
}

Result<std::vector<Value>> IsolatedJvmRunner::DoInvokeBatch(
    const std::vector<std::vector<Value>>& args_batch, UdfContext* ctx) {
  for (const std::vector<Value>& args : args_batch) {
    JAGUAR_RETURN_IF_ERROR(CheckUdfArgs("isolated_jvm_udf", arg_types_, args));
  }
  JAGUAR_ASSIGN_OR_RETURN(ExecutorPool::Lease lease, pool_->Acquire());

  const size_t header_bytes = 4;
  return RunGuardedBatch(&lease, args_batch, header_bytes, shm_capacity_, ctx,
                         [](BufferWriter*) {});
}

UdfManager::RunnerFactory MakeIsolatedJvmRunnerFactory(
    jvm::ResourceLimits limits, size_t shm_capacity, size_t pool_size,
    ipc::Transport transport) {
  return [limits, shm_capacity, pool_size, transport](const UdfInfo& info)
             -> Result<std::unique_ptr<UdfRunner>> {
    JAGUAR_ASSIGN_OR_RETURN(
        std::unique_ptr<IsolatedJvmRunner> runner,
        IsolatedJvmRunner::Spawn(info, limits, shm_capacity, pool_size,
                                 transport));
    return std::unique_ptr<UdfRunner>(std::move(runner));
  };
}

}  // namespace jaguar
