#include "udf/quarantine.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace jaguar {

QuarantineTracker::QuarantineTracker(int threshold)
    : threshold_(threshold > 0 ? threshold : kDefaultThreshold) {
  obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
  trips_ = reg->GetCounter("udf.quarantine.trips");
  rejections_ = reg->GetCounter("udf.quarantine.rejections");
  strikes_ = reg->GetCounter("udf.quarantine.strikes");
}

void QuarantineTracker::RecordOutcome(const std::string& name,
                                      const Status& outcome) {
  const bool strike = outcome.IsDeadlineExceeded() || outcome.IsIoError();
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[ToLower(name)];
  if (entry.quarantined) return;
  if (!strike) {
    entry.consecutive_strikes = 0;
    return;
  }
  strikes_->Add();
  if (++entry.consecutive_strikes >= threshold_) {
    entry.quarantined = true;
    trips_->Add();
    JAGUAR_LOG(kWarning) << "UDF '" << name << "' quarantined after "
                     << entry.consecutive_strikes
                     << " consecutive timeouts/crashes";
  }
}

Status QuarantineTracker::CheckAllowed(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(ToLower(name));
    if (it == entries_.end() || !it->second.quarantined) return Status::OK();
  }
  rejections_->Add();
  return SecurityViolation(
      "UDF '" + name + "' is quarantined after " + std::to_string(threshold_) +
      " consecutive timeouts/crashes; re-register it to re-enable");
}

bool QuarantineTracker::IsQuarantined(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(ToLower(name));
  return it != entries_.end() && it->second.quarantined;
}

void QuarantineTracker::Reset(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(ToLower(name));
}

}  // namespace jaguar
