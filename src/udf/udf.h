#ifndef JAGUAR_UDF_UDF_H_
#define JAGUAR_UDF_UDF_H_

/// \file udf.h
/// Core abstractions for user-defined functions.
///
/// A UDF is described by a `UdfDescriptor` (signature + implementation), runs
/// under a specific *design* (Table 1 of the paper) through a `UdfRunner`, and
/// talks back to the server through a `UdfContext` ("callbacks", Section 4).

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "types/value.h"

namespace jaguar {

/// The server-side facilities a UDF may request during execution.
/// Implementations live in the engine (real queries), in tests (mocks), and in
/// the benchmark harness (no-op counters, as in the paper's experiments where
/// "no data is actually transferred during the callback").
class UdfCallbackHandler {
 public:
  virtual ~UdfCallbackHandler() = default;

  /// Generic server request. `kind` selects a facility, `arg` parameterizes
  /// it, and the result is an integer. The paper's measured callbacks carry
  /// no bulk data; this models them.
  virtual Result<int64_t> Callback(int64_t kind, int64_t arg) = 0;

  /// Fetches a byte range of a large object identified by `handle` — the
  /// "Clip()/Lookup()" pattern of Section 5.5, where a UDF is given a handle
  /// rather than the whole object.
  virtual Result<std::vector<uint8_t>> FetchBytes(int64_t handle,
                                                  uint64_t offset,
                                                  uint64_t len) = 0;
};

/// Per-invocation context: routes callbacks and enforces the callback quota
/// (part of the resource management story of Section 6.2).
class UdfContext {
 public:
  /// \param handler may be null, in which case any callback fails.
  explicit UdfContext(UdfCallbackHandler* handler) : handler_(handler) {}

  Result<int64_t> Callback(int64_t kind, int64_t arg);
  Result<std::vector<uint8_t>> FetchBytes(int64_t handle, uint64_t offset,
                                          uint64_t len);

  /// Number of callbacks made through this context so far.
  uint64_t callbacks_made() const { return callbacks_made_; }

  /// Caps the number of callbacks a single invocation may make
  /// (0 = unlimited). Exceeding it fails with ResourceExhausted.
  void set_callback_quota(uint64_t quota) { callback_quota_ = quota; }

  /// Attaches the query's deadline token. The context does not own it; the
  /// engine keeps it alive for the duration of the query. May be null
  /// (unbounded query).
  void set_deadline(const QueryDeadline* deadline) { deadline_ = deadline; }
  const QueryDeadline* deadline() const { return deadline_; }

  /// \return OK while the query deadline (if any) has not passed.
  Status CheckDeadline() const { return jaguar::CheckDeadline(deadline_); }

 private:
  Status ChargeCallback();

  UdfCallbackHandler* handler_;
  uint64_t callbacks_made_ = 0;
  uint64_t callback_quota_ = 0;
  const QueryDeadline* deadline_ = nullptr;
};

/// Signature of a native (C++) UDF. Mirrors PREDATOR's original Design 1
/// extension point.
using NativeUdfFn = Status (*)(const std::vector<Value>& args, UdfContext* ctx,
                               Value* out);

/// A native UDF registration: signature plus function pointer.
struct NativeUdfEntry {
  std::string name;
  TypeId return_type;
  std::vector<TypeId> arg_types;
  NativeUdfFn fn;
};

/// Process-wide registry of native UDF implementations. Design 1 calls them
/// directly; Design 2's remote executor processes are forked from the server
/// image and resolve the same entries by name on their side of the boundary.
class NativeUdfRegistry {
 public:
  /// The process-global registry.
  static NativeUdfRegistry* Global();

  Status Register(NativeUdfEntry entry);
  Result<const NativeUdfEntry*> Lookup(const std::string& name) const;
  std::vector<std::string> List() const;

 private:
  std::map<std::string, NativeUdfEntry> entries_;
};

/// Size-bounded LRU memo of UDF results keyed by serialized arguments.
/// UDFs are side-effect-free expressions (Section 4), so a deterministic
/// invocation is a pure function of its arguments and repeated invocations
/// can be short-circuited without crossing any boundary at all. The runner
/// only memoizes invocations that made **zero callbacks** — a callback both
/// makes the result potentially server-state-dependent and is an observable
/// side effect the figures count. `UdfManager` owns one cache per cached
/// runner (opt-in via the engine's `udf_memo_entries` option) and drops it
/// whenever the runner cache is invalidated, so re-registering a UDF can
/// never serve results of the old implementation.
///
/// Thread-safe: parallel scan workers share one runner (and therefore one
/// memo); lookups return the value by copy because the LRU list mutates on
/// every hit.
class UdfMemoCache {
 public:
  explicit UdfMemoCache(size_t capacity) : capacity_(capacity) {}

  /// Canonical lookup key: argument count + each value's wire encoding.
  static std::string KeyFor(const std::vector<Value>& args);

  /// \return The cached result, or nullopt on a miss. A hit refreshes the
  /// entry's LRU position.
  std::optional<Value> Lookup(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// when the cache is at capacity.
  void Insert(const std::string& key, const Value& result);

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, Value>;

  mutable std::mutex mutex_;
  size_t capacity_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

/// One invocable UDF, bound to a concrete execution design. Implementations:
/// `IntegratedNativeRunner` (Design 1), `IsolatedNativeRunner` (Design 2),
/// `JvmUdfRunner` (Design 3), `SfiNativeRunner` (Section 2.3).
///
/// `Invoke` is the public entry point; it wraps the design-specific
/// `DoInvoke` with per-design metrics so every Figure-4–8 quantity is
/// observable in the live engine:
///   udf.<design>.invocations   total calls through this design
///   udf.<design>.failures      calls that returned an error
///   udf.<design>.latency_ns    histogram of per-call wall time
///   udf.<design>.arg_bytes     argument bytes crossing the boundary
///   udf.<design>.result_bytes  result bytes crossing back
/// where <design> is `DesignMetricKey(design_label())`.
class UdfRunner {
 public:
  virtual ~UdfRunner() = default;

  /// Applies the UDF to `args`. `ctx` carries the callback channel.
  Result<Value> Invoke(const std::vector<Value>& args, UdfContext* ctx);

  /// Applies the UDF to every argument row of `args_batch`, returning one
  /// result per row in order — semantically a loop over `Invoke`, and by
  /// default implemented as one (`DoInvokeBatch` loops `DoInvoke`). Runners
  /// with a real boundary override `DoInvokeBatch` to cross it **once per
  /// batch**: the isolated designs ship the whole batch in one shm round
  /// trip, the JagVM design enters the VM once and loops inside. Any row
  /// failing fails the whole batch. Per-design `udf.<design>.invocations` /
  /// `arg_bytes` / `result_bytes` still count per row (they measure UDF
  /// applications); `udf.<design>.latency_ns` records one sample per batch,
  /// and `udf.batch.*` counters record the batch entries themselves.
  Result<std::vector<Value>> InvokeBatch(
      const std::vector<std::vector<Value>>& args_batch, UdfContext* ctx);

  /// Attaches (or detaches, with null) a result memo consulted by `Invoke`
  /// and `InvokeBatch` before crossing into the UDF. Memo hits bypass
  /// `DoInvoke` entirely — including the per-design counters — and count
  /// under `udf.memo.hits`. The caller owns the cache and must keep it
  /// alive as long as the runner may be invoked.
  void set_memo_cache(UdfMemoCache* memo) { memo_ = memo; }

  /// Observer called with the outcome `Status` of every counted invocation
  /// (per batch for `InvokeBatch`). Installed by the resolver to feed the
  /// per-UDF quarantine tracker; memo hits and deadline fail-fasts (where the
  /// UDF never ran) are not reported. May be empty.
  using OutcomeListener = std::function<void(const Status&)>;
  void set_outcome_listener(OutcomeListener listener) {
    outcome_listener_ = std::move(listener);
  }

  /// \return The label used in the paper's graphs ("C++", "IC++", "JNI"...).
  virtual std::string design_label() const = 0;

  /// Maps a design label to its metric-name segment: lowercased, '+' → 'p',
  /// '-' → '_'. "C++" → "cpp", "IC++" → "icpp", "JNI" → "jni",
  /// "IJNI" → "ijni", "SFI-C++" → "sfi_cpp".
  static std::string DesignMetricKey(const std::string& label);

 protected:
  /// Design-specific invocation, implemented by each runner. Called only
  /// through `Invoke`.
  virtual Result<Value> DoInvoke(const std::vector<Value>& args,
                                 UdfContext* ctx) = 0;

  /// Design-specific batch invocation; the default loops `DoInvoke` (correct
  /// for in-process designs, which have no crossing to amortize). Called
  /// only through `InvokeBatch`, never with an empty batch.
  virtual Result<std::vector<Value>> DoInvokeBatch(
      const std::vector<std::vector<Value>>& args_batch, UdfContext* ctx);

 private:
  /// Resolves the cached metric pointers on first use (design_label() is
  /// virtual, so this cannot run in the constructor).
  void EnsureMetrics();

  /// `DoInvoke` wrapped in the per-design metrics (no memo consultation).
  Result<Value> InvokeCounted(const std::vector<Value>& args, UdfContext* ctx);
  /// `DoInvokeBatch` wrapped in the per-design + batch metrics.
  Result<std::vector<Value>> InvokeBatchCounted(
      const std::vector<std::vector<Value>>& args_batch, UdfContext* ctx);

  std::once_flag metrics_once_;
  obs::Counter* invocations_ = nullptr;
  obs::Counter* failures_ = nullptr;
  obs::Counter* arg_bytes_ = nullptr;
  obs::Counter* result_bytes_ = nullptr;
  obs::Histogram* latency_ns_ = nullptr;
  UdfMemoCache* memo_ = nullptr;  ///< Owned by the resolver; may be null.
  OutcomeListener outcome_listener_;
};

/// Design 1: the UDF is a function pointer inside the server process. Fastest
/// and least safe — "essentially corresponds to hard-coding the UDF into the
/// server".
class IntegratedNativeRunner : public UdfRunner {
 public:
  explicit IntegratedNativeRunner(const NativeUdfEntry* entry)
      : entry_(entry) {}

  std::string design_label() const override { return "C++"; }

 protected:
  Result<Value> DoInvoke(const std::vector<Value>& args,
                         UdfContext* ctx) override;

 private:
  const NativeUdfEntry* entry_;
};

/// Validates `args` against an entry's declared signature (arity + types,
/// with int→double widening). Shared by all runners.
Status CheckUdfArgs(const std::string& name,
                    const std::vector<TypeId>& arg_types,
                    const std::vector<Value>& args);

/// Resolves a function name to a runner plus its signature. The engine's
/// implementation (`UdfManager`) consults the catalog and instantiates the
/// runner matching the UDF's registered design; tests supply mocks.
class UdfResolver {
 public:
  virtual ~UdfResolver() = default;

  /// \return A runner for `name`; fills `return_type` and `arg_types` with
  /// the declared signature. The resolver owns the runner, which must stay
  /// alive for the duration of the query using it.
  virtual Result<UdfRunner*> Resolve(const std::string& name,
                                     TypeId* return_type,
                                     std::vector<TypeId>* arg_types) = 0;
};

}  // namespace jaguar

#endif  // JAGUAR_UDF_UDF_H_
