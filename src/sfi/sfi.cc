#include "sfi/sfi.h"

#include <sys/mman.h>

#include <cstring>

#include "common/string_util.h"

namespace jaguar {
namespace sfi {

Result<SfiRegion> SfiRegion::Create(unsigned size_log2) {
  if (size_log2 < 12 || size_log2 > 32) {
    return InvalidArgument("SFI region size must be 2^12..2^32 bytes");
  }
  const size_t size = size_t{1} << size_log2;
  // Over-map by `size` so an aligned sub-range always exists, then keep the
  // whole mapping and use the aligned pointer inside it (simple and
  // portable; the extra address space costs nothing until touched).
  const size_t map_size = size * 2;
  void* mem = ::mmap(nullptr, map_size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return IoError("mmap for SFI region failed");
  uintptr_t raw = reinterpret_cast<uintptr_t>(mem);
  uintptr_t aligned = (raw + size - 1) & ~(uintptr_t{size} - 1);
  SfiRegion region;
  region.map_base_ = mem;
  region.map_size_ = map_size;
  region.base_ = reinterpret_cast<uint8_t*>(aligned);
  region.mask_ = size - 1;
  return region;
}

SfiRegion::~SfiRegion() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_size_);
}

SfiRegion& SfiRegion::operator=(SfiRegion&& o) noexcept {
  if (this != &o) {
    if (map_base_ != nullptr) ::munmap(map_base_, map_size_);
    base_ = o.base_;
    mask_ = o.mask_;
    map_base_ = o.map_base_;
    map_size_ = o.map_size_;
    o.base_ = nullptr;
    o.mask_ = 0;
    o.map_base_ = nullptr;
    o.map_size_ = 0;
  }
  return *this;
}

Status SfiRegion::CopyIn(uint64_t addr, const uint8_t* src, size_t len) {
  if (addr > size() || len > size() - addr) {
    return InvalidArgument(StringPrintf(
        "CopyIn of %zu bytes at %llu exceeds SFI region of %zu bytes", len,
        static_cast<unsigned long long>(addr), size()));
  }
  std::memcpy(base_ + addr, src, len);
  return Status::OK();
}

Status SfiRegion::CopyOut(uint64_t addr, uint8_t* dst, size_t len) const {
  if (addr > size() || len > size() - addr) {
    return InvalidArgument("CopyOut exceeds SFI region");
  }
  std::memcpy(dst, base_ + addr, len);
  return Status::OK();
}

}  // namespace sfi
}  // namespace jaguar
