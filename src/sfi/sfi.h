#ifndef JAGUAR_SFI_SFI_H_
#define JAGUAR_SFI_SFI_H_

/// \file sfi.h
/// Software Fault Isolation (Wahbe et al., SOSP'93 — reference [WLAG93] in
/// the paper) for native UDFs.
///
/// The original technique rewrites untrusted machine code so that "the higher
/// order bits of each address ... lie within a specific range". We apply the
/// same address-masking discipline at the source level: UDF data lives inside
/// a power-of-two-sized, alignment-matched region, and every load/store goes
/// through accessors that mask the address into the region. A wild address
/// therefore cannot reach server memory — it wraps inside the sandbox. The
/// paper expects "an overhead of approximately 25%" from this mechanism
/// (Section 4); `bench_ablation_sfi` measures it.

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace jaguar {
namespace sfi {

/// A 2^k-byte sandbox region whose base is 2^k-aligned, so that
/// `base | (addr & mask)` confines any 64-bit address into the region with a
/// single AND (the SFI sandboxing operation).
class SfiRegion {
 public:
  /// Allocates a region of `1 << size_log2` bytes (zeroed).
  static Result<SfiRegion> Create(unsigned size_log2);

  SfiRegion() = default;
  ~SfiRegion();
  SfiRegion(SfiRegion&& o) noexcept { *this = std::move(o); }
  SfiRegion& operator=(SfiRegion&& o) noexcept;
  SfiRegion(const SfiRegion&) = delete;
  SfiRegion& operator=(const SfiRegion&) = delete;

  uint8_t* base() { return base_; }
  const uint8_t* base() const { return base_; }
  size_t size() const { return mask_ + 1; }
  uint64_t mask() const { return mask_; }

  /// Sandboxed accessors: any 64-bit "address" (an offset as far as the UDF
  /// is concerned) is masked into the region. These compile to a single AND
  /// plus the access — the per-access cost the ablation bench measures.
  inline uint8_t LoadByte(uint64_t addr) const { return base_[addr & mask_]; }
  inline void StoreByte(uint64_t addr, uint8_t v) { base_[addr & mask_] = v; }
  inline int64_t LoadWord(uint64_t addr) const {
    int64_t v;
    __builtin_memcpy(&v, base_ + (addr & mask_ & ~uint64_t{7}), 8);
    return v;
  }
  inline void StoreWord(uint64_t addr, int64_t v) {
    __builtin_memcpy(base_ + (addr & mask_ & ~uint64_t{7}), &v, 8);
  }

  /// Copies data into / out of the sandbox (the trusted crossing).
  Status CopyIn(uint64_t addr, const uint8_t* src, size_t len);
  Status CopyOut(uint64_t addr, uint8_t* dst, size_t len) const;

 private:
  uint8_t* base_ = nullptr;
  uint64_t mask_ = 0;       // size - 1
  void* map_base_ = nullptr;
  size_t map_size_ = 0;
};

}  // namespace sfi
}  // namespace jaguar

#endif  // JAGUAR_SFI_SFI_H_
