#include "jvm/jit.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "common/string_util.h"
#include "jvm/heap.h"
#include "jvm/vm.h"

namespace jaguar {
namespace jvm {

// ---------------------------------------------------------------------------
// Runtime helpers called from JIT code (C ABI). Each returns 0 on success or
// a Trap code after storing it (plus any Status detail) in the frame/context.
// ---------------------------------------------------------------------------

extern "C" {

int64_t jag_rt_call(JitCallFrame* f, uint64_t cpool_idx, int64_t* argret) {
  Result<LoadedClass::ResolvedMethod> target =
      ResolveCall(*f->cls, static_cast<uint32_t>(cpool_idx));
  if (!target.ok()) {
    f->ctx->set_pending_error(target.status());
    f->trap = static_cast<int64_t>(Trap::kNative);
    return f->trap;
  }
  Result<int64_t> r =
      f->ctx->CallResolved(*target->target_class, *target->method, argret);
  if (!r.ok()) {
    f->ctx->set_pending_error(r.status());
    f->trap = static_cast<int64_t>(Trap::kNative);
    return f->trap;
  }
  argret[0] = *r;
  return 0;
}

int64_t jag_rt_callnative(JitCallFrame* f, uint64_t cpool_idx,
                          int64_t* argret) {
  Result<const NativeMethod*> native =
      ResolveNative(f->ctx->vm(), *f->cls, static_cast<uint32_t>(cpool_idx));
  if (!native.ok()) {
    f->ctx->set_pending_error(native.status());
    f->trap = static_cast<int64_t>(Trap::kNative);
    return f->trap;
  }
  Result<int64_t> r = InvokeNative(f->ctx, **native, argret);
  if (!r.ok()) {
    f->ctx->set_pending_error(r.status());
    f->trap = static_cast<int64_t>(
        r.status().IsSecurityViolation() ? Trap::kSecurity : Trap::kNative);
    return f->trap;
  }
  argret[0] = *r;
  return 0;
}

/// Returns the new ArrayObject* (never 0) or 0 with f->trap set.
int64_t jag_rt_newarray(JitCallFrame* f, int64_t len, int64_t kind) {
  if (len < 0) {
    f->ctx->set_pending_error(RuntimeError("negative array size"));
    f->trap = static_cast<int64_t>(Trap::kNative);
    return 0;
  }
  Result<ArrayObject*> arr =
      kind == static_cast<int64_t>(ArrayObject::kByteKind)
          ? f->ctx->heap().NewByteArray(static_cast<uint64_t>(len))
          : f->ctx->heap().NewIntArray(static_cast<uint64_t>(len));
  if (!arr.ok()) {
    f->ctx->set_pending_error(arr.status());
    f->trap = static_cast<int64_t>(Trap::kHeap);
    return 0;
  }
  return reinterpret_cast<int64_t>(*arr);
}

}  // extern "C"

#if !defined(__x86_64__)

Result<std::unique_ptr<JitArtifact>> CompileMethod(
    const LoadedClass& cls, const VerifiedMethod& method,
    bool emit_budget_checks) {
  return NotSupported("JagVM JIT supports x86-64 only");
}

#else

namespace {

// Pinned infrastructure registers.
constexpr Reg kLocals = Reg::RBX;     // locals array base
constexpr Reg kSpillBase = Reg::R13;  // canonical operand-stack base
constexpr Reg kFrame = Reg::R14;      // JitCallFrame*
constexpr Reg kBudget = Reg::R12;     // instructions-remaining (VALUE; synced
                                      // to *frame->budget at boundaries)

// Frame field offsets (must match JitCallFrame).
constexpr int32_t kFrameLocals = 0;
constexpr int32_t kFrameSpill = 8;
constexpr int32_t kFrameTrap = 24;
constexpr int32_t kFrameBudget = 32;

// Registers available for pinning hot locals. RBP/R15 are callee-saved and
// survive helper calls for free; RSI/RDI/R8 are caller-saved and are
// spilled/reloaded around helper calls.
constexpr Reg kPinRegs[] = {Reg::RBP, Reg::R15, Reg::RSI, Reg::RDI, Reg::R8};
constexpr size_t kMaxPins = sizeof(kPinRegs) / sizeof(kPinRegs[0]);
constexpr size_t kCalleeSavedPins = 2;  // RBP, R15

// Operand-pool registers (caller-saved; flushed around helper calls). Three
// registers are necessary and sufficient: the widest simultaneous operand
// set is bastore/iastore (value, index, array), and popped operands are no
// longer spillable stack entries.
constexpr Reg kPool[] = {Reg::R9, Reg::R10, Reg::R11};
constexpr size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);

/// One symbolic operand-stack entry.
///  * kReg:   value lives in an owned pool register.
///  * kSpill: value lives in its canonical frame slot (always positioned at
///            its own stack index — see Flush()).
///  * kAlias: value is "the current value of pinned local `local`"; reading
///            it uses the pin register directly, but any store to that local
///            first materializes live aliases (copy-on-invalidate).
struct StackEntry {
  enum class Kind : uint8_t { kReg, kSpill, kAlias };
  Kind kind;
  Reg reg = Reg::RAX;      // kReg
  uint32_t local = 0;      // kAlias
};

/// A popped operand: the register holding the value plus whether the caller
/// owns (and must free / may mutate) it.
struct Operand {
  Reg reg;
  bool temp;
};

class MethodCompiler {
 public:
  MethodCompiler(const LoadedClass& cls, const VerifiedMethod& m,
                 bool emit_budget_checks)
      : cls_(cls), m_(m), emit_budget_checks_(emit_budget_checks) {}

  Result<std::unique_ptr<JitArtifact>> Compile() {
    JAGUAR_RETURN_IF_ERROR(AnalyzeBlocks());
    PickPinnedLocals();

    block_labels_.resize(m_.code.size());
    for (size_t pc = 0; pc < m_.code.size(); ++pc) {
      if (block_start_[pc]) block_labels_[pc] = a_.NewLabel();
    }
    trap_div_ = a_.NewLabel();
    trap_bounds_ = a_.NewLabel();
    trap_budget_ = a_.NewLabel();
    trap_helper_ = a_.NewLabel();
    epilogue_ = a_.NewLabel();

    EmitPrologue();

    bool reachable = true;
    for (uint32_t pc = 0; pc < m_.code.size(); ++pc) {
      if (block_start_[pc]) {
        if (pc > 0 && reachable && !IsBlockEnd(m_.code[pc - 1].op)) {
          Flush();
        }
        reachable = entry_depth_[pc] >= 0;
        if (reachable) {
          if (loop_head_[pc]) a_.AlignTo(16);
          a_.Bind(block_labels_[pc]);
          ResetToCanonical(entry_depth_[pc]);
          EmitBudgetCharge(pc);
        }
      }
      if (!reachable) continue;
      skip_ = 0;
      JAGUAR_RETURN_IF_ERROR(EmitInstr(pc));
      pc += skip_;
    }

    EmitTrapExits();

    JAGUAR_ASSIGN_OR_RETURN(std::vector<uint8_t> code, a_.Finalize());
    JAGUAR_ASSIGN_OR_RETURN(ExecutableMemory mem,
                            ExecutableMemory::Create(code));
    return std::make_unique<JitArtifact>(std::move(mem));
  }

 private:
  // -- Analysis -------------------------------------------------------------

  Status StackEffect(const Instr& ins, int* pops, int* pushes) {
    switch (ins.op) {
      case Op::kNop: *pops = 0; *pushes = 0; break;
      case Op::kIConst: *pops = 0; *pushes = 1; break;
      case Op::kILoad: case Op::kALoad: *pops = 0; *pushes = 1; break;
      case Op::kIStore: case Op::kAStore: *pops = 1; *pushes = 0; break;
      case Op::kIAdd: case Op::kISub: case Op::kIMul: case Op::kIDiv:
      case Op::kIRem: case Op::kIAnd: case Op::kIOr: case Op::kIXor:
      case Op::kIShl: case Op::kIShr: case Op::kIUShr:
        *pops = 2; *pushes = 1; break;
      case Op::kINeg: *pops = 1; *pushes = 1; break;
      case Op::kIfICmpEq: case Op::kIfICmpNe: case Op::kIfICmpLt:
      case Op::kIfICmpLe: case Op::kIfICmpGt: case Op::kIfICmpGe:
        *pops = 2; *pushes = 0; break;
      case Op::kIfEq: case Op::kIfNe: *pops = 1; *pushes = 0; break;
      case Op::kGoto: *pops = 0; *pushes = 0; break;
      case Op::kBALoad: case Op::kIALoad: *pops = 2; *pushes = 1; break;
      case Op::kBAStore: case Op::kIAStore: *pops = 3; *pushes = 0; break;
      case Op::kArrayLen: *pops = 1; *pushes = 1; break;
      case Op::kNewBArray: case Op::kNewIArray: *pops = 1; *pushes = 1; break;
      case Op::kCall: case Op::kCallNative: {
        JAGUAR_ASSIGN_OR_RETURN(Signature sig, CalleeSig(ins));
        *pops = static_cast<int>(sig.params.size());
        *pushes = sig.returns_void ? 0 : 1;
        break;
      }
      case Op::kIReturn: case Op::kAReturn: *pops = 1; *pushes = 0; break;
      case Op::kReturn: *pops = 0; *pushes = 0; break;
      case Op::kDup: *pops = 0; *pushes = 1; break;
      case Op::kPop: *pops = 1; *pushes = 0; break;
      case Op::kSwap: *pops = 0; *pushes = 0; break;
    }
    return Status::OK();
  }

  Result<Signature> CalleeSig(const Instr& ins) {
    const ClassFile& cf = cls_.cls.cf;
    ConstKind kind = ins.op == Op::kCall ? ConstKind::kMethodRef
                                         : ConstKind::kNativeRef;
    JAGUAR_ASSIGN_OR_RETURN(const ConstEntry* e,
                            cf.GetEntry(static_cast<uint16_t>(ins.a), kind));
    JAGUAR_ASSIGN_OR_RETURN(const std::string* sig_text,
                            cf.GetUtf8(e->sig_idx));
    return Signature::Parse(*sig_text);
  }

  Status AnalyzeBlocks() {
    const size_t n = m_.code.size();
    block_start_.assign(n, false);
    entry_depth_.assign(n, -1);
    block_start_[0] = true;
    for (size_t pc = 0; pc < n; ++pc) {
      const Instr& ins = m_.code[pc];
      if (IsBranch(ins.op)) {
        block_start_[ins.a] = true;
        if (pc + 1 < n) block_start_[pc + 1] = true;
      } else if (IsBlockEnd(ins.op) && pc + 1 < n) {
        block_start_[pc + 1] = true;
      }
    }
    // Loop heads (targets of backward branches) get 16-byte alignment.
    loop_head_.assign(n, false);
    for (uint32_t pc = 0; pc < n; ++pc) {
      const Instr& ins = m_.code[pc];
      if (IsBranch(ins.op) && ins.a <= pc) loop_head_[ins.a] = true;
    }
    std::vector<uint32_t> worklist = {0};
    entry_depth_[0] = 0;
    while (!worklist.empty()) {
      uint32_t pc = worklist.back();
      worklist.pop_back();
      int depth = entry_depth_[pc];
      for (uint32_t i = pc;; ++i) {
        const Instr& ins = m_.code[i];
        int pops = 0, pushes = 0;
        JAGUAR_RETURN_IF_ERROR(StackEffect(ins, &pops, &pushes));
        depth = depth - pops + pushes;
        auto propagate = [&](uint32_t target, int d) -> Status {
          if (entry_depth_[target] == -1) {
            entry_depth_[target] = d;
            worklist.push_back(target);
          } else if (entry_depth_[target] != d) {
            return Internal("inconsistent stack depth post-verification");
          }
          return Status::OK();
        };
        if (IsBranch(ins.op)) {
          JAGUAR_RETURN_IF_ERROR(propagate(ins.a, depth));
        }
        if (IsBlockEnd(ins.op)) break;
        if (i + 1 < m_.code.size() && block_start_[i + 1]) {
          JAGUAR_RETURN_IF_ERROR(propagate(i + 1, depth));
          break;
        }
      }
    }
    block_len_.assign(n, 0);
    for (size_t start = 0; start < n; ++start) {
      if (!block_start_[start]) continue;
      uint32_t len = 0;
      for (size_t i = start; i < n; ++i) {
        ++len;
        if (IsBlockEnd(m_.code[i].op) ||
            (i + 1 < n && block_start_[i + 1])) {
          break;
        }
      }
      block_len_[start] = len;
    }
    return Status::OK();
  }

  /// Pins the hottest locals to registers for the whole method — the
  /// optimization that lets JIT-compiled loops run at native speed
  /// (Figure 6's "good JIT compiler"). Uses are weighted by approximate
  /// loop-nesting depth (derived from backward branches), so inner-loop
  /// counters beat outer-loop parameters.
  void PickPinnedLocals() {
    pin_of_local_.assign(m_.max_locals, -1);
    num_pins_ = 0;
    if (m_.max_locals == 0) return;
    // Loop depth estimate: each backward edge (branch to target <= pc)
    // increments the depth of every instruction in [target, pc].
    std::vector<uint32_t> depth(m_.code.size(), 0);
    for (uint32_t pc = 0; pc < m_.code.size(); ++pc) {
      const Instr& ins = m_.code[pc];
      if (IsBranch(ins.op) && ins.a <= pc) {
        for (uint32_t i = ins.a; i <= pc; ++i) ++depth[i];
      }
    }
    std::vector<uint64_t> weight(m_.max_locals, 0);
    for (uint32_t pc = 0; pc < m_.code.size(); ++pc) {
      const Instr& ins = m_.code[pc];
      switch (ins.op) {
        case Op::kILoad: case Op::kIStore: case Op::kALoad: case Op::kAStore:
          if (ins.a < weight.size()) {
            weight[ins.a] += uint64_t{1} << (3 * std::min<uint32_t>(
                                                 depth[pc], 6));
          }
          break;
        default:
          break;
      }
    }
    std::vector<std::pair<uint64_t, uint32_t>> uses;  // (weight, local)
    for (uint32_t i = 0; i < weight.size(); ++i) {
      if (weight[i] > 0) uses.emplace_back(weight[i], i);
    }
    std::sort(uses.begin(), uses.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    for (const auto& [w, local] : uses) {
      if (num_pins_ >= kMaxPins) break;
      pin_of_local_[local] = static_cast<int>(num_pins_++);
    }
  }

  bool IsPinned(uint32_t local) const { return pin_of_local_[local] >= 0; }
  Reg PinReg(uint32_t local) const {
    return kPinRegs[pin_of_local_[local]];
  }

  // -- Symbolic stack management ---------------------------------------------

  void ResetToCanonical(int depth) {
    stack_.clear();
    for (int i = 0; i < depth; ++i) {
      stack_.push_back({StackEntry::Kind::kSpill});
    }
    for (size_t i = 0; i < kPoolSize; ++i) reg_used_[i] = false;
  }

  int32_t SlotDisp(size_t position) {
    return static_cast<int32_t>(position * 8);
  }

  Reg AllocReg() {
    for (size_t i = 0; i < kPoolSize; ++i) {
      if (!reg_used_[i]) {
        reg_used_[i] = true;
        return kPool[i];
      }
    }
    for (size_t pos = 0; pos < stack_.size(); ++pos) {
      if (stack_[pos].kind == StackEntry::Kind::kReg) {
        Reg victim = stack_[pos].reg;
        a_.MovMemReg(kSpillBase, SlotDisp(pos), victim);
        stack_[pos].kind = StackEntry::Kind::kSpill;
        return victim;  // stays marked used
      }
    }
    JAGUAR_CHECK(false) << "JIT register pool inconsistency";
    return kPool[0];
  }

  void FreeReg(Reg r) {
    for (size_t i = 0; i < kPoolSize; ++i) {
      if (kPool[i] == r) {
        reg_used_[i] = false;
        return;
      }
    }
  }
  void FreeOperand(const Operand& op) {
    if (op.temp) FreeReg(op.reg);
  }

  void PushReg(Reg r) {
    stack_.push_back({StackEntry::Kind::kReg, r, 0});
  }

  /// Pops the top entry for read-only use. Alias entries hand back the pin
  /// register itself (no copy, not owned).
  Operand PopSource() {
    JAGUAR_CHECK(!stack_.empty()) << "JIT symbolic stack underflow";
    StackEntry e = stack_.back();
    size_t pos = stack_.size() - 1;
    stack_.pop_back();
    switch (e.kind) {
      case StackEntry::Kind::kReg:
        return {e.reg, true};
      case StackEntry::Kind::kSpill: {
        Reg r = AllocReg();
        a_.MovRegMem(r, kSpillBase, SlotDisp(pos));
        return {r, true};
      }
      case StackEntry::Kind::kAlias:
        return {PinReg(e.local), false};
    }
    return {kPool[0], false};
  }

  /// Pops the top entry into a register the caller may clobber.
  Operand PopMutable() {
    JAGUAR_CHECK(!stack_.empty()) << "JIT symbolic stack underflow";
    StackEntry e = stack_.back();
    size_t pos = stack_.size() - 1;
    stack_.pop_back();
    Reg r;
    switch (e.kind) {
      case StackEntry::Kind::kReg:
        return {e.reg, true};
      case StackEntry::Kind::kSpill:
        r = AllocReg();
        a_.MovRegMem(r, kSpillBase, SlotDisp(pos));
        return {r, true};
      case StackEntry::Kind::kAlias:
        r = AllocReg();
        a_.MovRegReg(r, PinReg(e.local));
        return {r, true};
    }
    return {kPool[0], true};
  }

  /// A store to pinned local `local` is about to change its register; any
  /// live stack aliases of it must capture the old value first. Captures go
  /// to the canonical spill slot so this never needs a free register.
  void MaterializeAliasesOf(uint32_t local) {
    for (size_t pos = 0; pos < stack_.size(); ++pos) {
      StackEntry& e = stack_[pos];
      if (e.kind == StackEntry::Kind::kAlias && e.local == local) {
        a_.MovMemReg(kSpillBase, SlotDisp(pos), PinReg(local));
        e.kind = StackEntry::Kind::kSpill;
      }
    }
  }

  /// Flushes every non-canonical entry to its canonical slot.
  void Flush() {
    for (size_t pos = 0; pos < stack_.size(); ++pos) {
      StackEntry& e = stack_[pos];
      if (e.kind == StackEntry::Kind::kReg) {
        a_.MovMemReg(kSpillBase, SlotDisp(pos), e.reg);
        FreeReg(e.reg);
        e.kind = StackEntry::Kind::kSpill;
      } else if (e.kind == StackEntry::Kind::kAlias) {
        a_.MovMemReg(kSpillBase, SlotDisp(pos), PinReg(e.local));
        e.kind = StackEntry::Kind::kSpill;
      }
    }
  }

  /// Drops all symbolic entries without emitting stores (used at returns,
  /// where the remaining operand-stack values are dead).
  void DiscardStack() {
    for (StackEntry& e : stack_) {
      if (e.kind == StackEntry::Kind::kReg) FreeReg(e.reg);
    }
    stack_.clear();
  }

  static bool FitsImm32(int64_t v) {
    return v >= INT32_MIN && v <= INT32_MAX;
  }

  /// Emits `dst op= imm` for the foldable ALU ops.
  void EmitAluImm(Op op, Reg dst, int32_t imm) {
    switch (op) {
      case Op::kIAdd: a_.AddRegImm32(dst, imm); break;
      case Op::kISub: a_.SubRegImm32(dst, imm); break;
      case Op::kIAnd: a_.AndRegImm32(dst, imm); break;
      case Op::kIOr: a_.OrRegImm32(dst, imm); break;
      default: a_.XorRegImm32(dst, imm); break;
    }
  }

  void EmitAluReg(Op op, Reg dst, Reg src) {
    switch (op) {
      case Op::kIAdd: a_.AddRegReg(dst, src); break;
      case Op::kISub: a_.SubRegReg(dst, src); break;
      case Op::kIAnd: a_.AndRegReg(dst, src); break;
      case Op::kIOr: a_.OrRegReg(dst, src); break;
      default: a_.XorRegReg(dst, src); break;
    }
  }

  static bool IsFoldableAlu(Op op) {
    return op == Op::kIAdd || op == Op::kISub || op == Op::kIAnd ||
           op == Op::kIOr || op == Op::kIXor;
  }

  /// True when instructions pc+1..pc+n exist in the same basic block.
  bool SameBlock(uint32_t pc, uint32_t n) const {
    if (pc + n >= m_.code.size()) return false;
    for (uint32_t k = 1; k <= n; ++k) {
      if (block_start_[pc + k]) return false;
    }
    return true;
  }

  /// Peephole: `iload a; (iconst c | iload b); alu; istore a` with `a`
  /// pinned becomes a single read-modify-write on the pin register — this is
  /// what makes JIT-compiled counter/accumulator loops run at native speed.
  bool TryFusedPinnedRmw(uint32_t pc) {
    const Instr& i0 = m_.code[pc];
    if (i0.op != Op::kILoad || !IsPinned(i0.a) || !SameBlock(pc, 3)) {
      return false;
    }
    const Instr& i1 = m_.code[pc + 1];
    const Instr& i2 = m_.code[pc + 2];
    const Instr& i3 = m_.code[pc + 3];
    if (!IsFoldableAlu(i2.op) || i3.op != Op::kIStore || i3.a != i0.a) {
      return false;
    }
    const bool src_const = i1.op == Op::kIConst && FitsImm32(i1.imm);
    const bool src_local = i1.op == Op::kILoad;
    if (!src_const && !src_local) return false;

    Reg dst = PinReg(i0.a);
    MaterializeAliasesOf(i0.a);  // stack aliases keep the pre-store value
    if (src_const) {
      EmitAluImm(i2.op, dst, static_cast<int32_t>(i1.imm));
    } else if (IsPinned(i1.a)) {
      EmitAluReg(i2.op, dst, PinReg(i1.a));
    } else {
      a_.MovRegMem(Reg::RAX, kLocals, static_cast<int32_t>(i1.a * 8));
      EmitAluReg(i2.op, dst, Reg::RAX);
    }
    skip_ = 3;
    return true;
  }

  /// Peephole: `iconst c; alu` folds the constant into an immediate operand;
  /// `iconst c; if_icmpXX` becomes cmp-with-immediate.
  bool TryConstFold(uint32_t pc) {
    const Instr& i0 = m_.code[pc];
    if (i0.op != Op::kIConst || !FitsImm32(i0.imm) || !SameBlock(pc, 1)) {
      return false;
    }
    const Instr& i1 = m_.code[pc + 1];
    if (IsFoldableAlu(i1.op)) {
      Operand a = PopMutable();
      EmitAluImm(i1.op, a.reg, static_cast<int32_t>(i0.imm));
      PushReg(a.reg);
      skip_ = 1;
      return true;
    }
    switch (i1.op) {
      case Op::kIfICmpEq: case Op::kIfICmpNe: case Op::kIfICmpLt:
      case Op::kIfICmpLe: case Op::kIfICmpGt: case Op::kIfICmpGe: {
        Operand a = PopSource();
        Flush();
        a_.CmpRegImm32(a.reg, static_cast<int32_t>(i0.imm));
        FreeOperand(a);
        Cond cond;
        switch (i1.op) {
          case Op::kIfICmpEq: cond = Cond::kE; break;
          case Op::kIfICmpNe: cond = Cond::kNe; break;
          case Op::kIfICmpLt: cond = Cond::kL; break;
          case Op::kIfICmpLe: cond = Cond::kLe; break;
          case Op::kIfICmpGt: cond = Cond::kG; break;
          default: cond = Cond::kGe; break;
        }
        a_.Jcc(cond, block_labels_[i1.a]);
        skip_ = 1;
        return true;
      }
      default:
        return false;
    }
  }

  /// Peephole: `iload <unpinned local>; if_icmpXX` compares against the
  /// local's memory slot directly (one micro-fused cmp instead of a load
  /// with a dependent compare) — loop bounds that did not win a pin register
  /// stay cheap.
  bool TryCmpMemFold(uint32_t pc) {
    const Instr& i0 = m_.code[pc];
    if (i0.op != Op::kILoad || IsPinned(i0.a) || !SameBlock(pc, 1)) {
      return false;
    }
    const Instr& i1 = m_.code[pc + 1];
    Cond cond;
    switch (i1.op) {
      case Op::kIfICmpEq: cond = Cond::kE; break;
      case Op::kIfICmpNe: cond = Cond::kNe; break;
      case Op::kIfICmpLt: cond = Cond::kL; break;
      case Op::kIfICmpLe: cond = Cond::kLe; break;
      case Op::kIfICmpGt: cond = Cond::kG; break;
      case Op::kIfICmpGe: cond = Cond::kGe; break;
      default: return false;
    }
    Operand a = PopSource();  // the comparison's left operand
    Flush();
    a_.CmpRegMem(a.reg, kLocals, static_cast<int32_t>(i0.a * 8));
    FreeOperand(a);
    a_.Jcc(cond, block_labels_[i1.a]);
    skip_ = 1;
    return true;
  }

  /// Spills caller-saved pinned locals to the frame's locals array (helpers
  /// clobber RSI/RDI); reload mirrors it.
  void SaveCallerSavedPins() {
    for (uint32_t local = 0; local < m_.max_locals; ++local) {
      int pin = pin_of_local_[local];
      if (pin >= static_cast<int>(kCalleeSavedPins)) {
        a_.MovMemReg(kLocals, static_cast<int32_t>(local * 8),
                     kPinRegs[pin]);
      }
    }
  }
  void ReloadCallerSavedPins() {
    for (uint32_t local = 0; local < m_.max_locals; ++local) {
      int pin = pin_of_local_[local];
      if (pin >= static_cast<int>(kCalleeSavedPins)) {
        a_.MovRegMem(kPinRegs[pin], kLocals,
                     static_cast<int32_t>(local * 8));
      }
    }
  }

  // -- Emission ---------------------------------------------------------------

  void EmitPrologue() {
    a_.PushReg(Reg::RBX);
    a_.PushReg(Reg::RBP);
    a_.PushReg(Reg::R12);
    a_.PushReg(Reg::R13);
    a_.PushReg(Reg::R14);
    a_.PushReg(Reg::R15);
    a_.SubRegImm32(Reg::RSP, 8);  // align to 16 for helper calls
    a_.MovRegReg(kFrame, Reg::RDI);
    a_.MovRegMem(kLocals, kFrame, kFrameLocals);
    a_.MovRegMem(kSpillBase, kFrame, kFrameSpill);
    // The budget lives in a register while this frame runs; it is synced to
    // the shared counter (*frame->budget) at returns and around helper calls
    // so nested frames and the embedder observe a consistent value.
    a_.MovRegMem(Reg::RAX, kFrame, kFrameBudget);
    a_.MovRegMem(kBudget, Reg::RAX, 0);
    // Load pinned locals (arguments are prefilled; others hold garbage that
    // the verifier guarantees is never read before being written).
    for (uint32_t local = 0; local < m_.max_locals; ++local) {
      if (IsPinned(local)) {
        a_.MovRegMem(PinReg(local), kLocals,
                     static_cast<int32_t>(local * 8));
      }
    }
  }

  void EmitEpilogue() {
    a_.Bind(epilogue_);
    EmitBudgetWriteBack();
    a_.AddRegImm32(Reg::RSP, 8);
    a_.PopReg(Reg::R15);
    a_.PopReg(Reg::R14);
    a_.PopReg(Reg::R13);
    a_.PopReg(Reg::R12);
    a_.PopReg(Reg::RBP);
    a_.PopReg(Reg::RBX);
    a_.Ret();
  }

  void EmitBudgetCharge(uint32_t block_pc) {
    if (!emit_budget_checks_) return;
    a_.SubRegImm32(kBudget, static_cast<int32_t>(block_len_[block_pc]));
    a_.Jcc(Cond::kS, trap_budget_);
  }

  /// *frame->budget = r12 (clobbers RCX only — RAX may hold a result).
  void EmitBudgetWriteBack() {
    if (!emit_budget_checks_) return;
    a_.MovRegMem(Reg::RCX, kFrame, kFrameBudget);
    a_.MovMemReg(Reg::RCX, 0, kBudget);
  }
  /// r12 = *frame->budget (clobbers RCX only).
  void EmitBudgetReload() {
    if (!emit_budget_checks_) return;
    a_.MovRegMem(Reg::RCX, kFrame, kFrameBudget);
    a_.MovRegMem(kBudget, Reg::RCX, 0);
  }

  void EmitTrapExits() {
    auto store_trap = [&](X64Assembler::LabelId label, Trap code) {
      a_.Bind(label);
      a_.MovRegImm64(Reg::RAX, static_cast<int64_t>(code));
      a_.MovMemReg(kFrame, kFrameTrap, Reg::RAX);
      a_.Jmp(epilogue_);
    };
    store_trap(trap_div_, Trap::kDivByZero);
    store_trap(trap_bounds_, Trap::kBounds);
    store_trap(trap_budget_, Trap::kBudget);
    a_.Bind(trap_helper_);  // helper already wrote frame->trap
    EmitBudgetReload();     // nested frames spent budget; r12 is stale
    a_.Jmp(epilogue_);
    EmitEpilogue();
  }

  template <typename SetupFn>
  void EmitHelperCall(void* helper, SetupFn setup_args) {
    a_.MovRegReg(Reg::RDI, kFrame);
    setup_args();
    a_.MovRegImm64(Reg::RAX, reinterpret_cast<int64_t>(helper));
    a_.CallReg(Reg::RAX);
  }

  Status EmitInstr(uint32_t pc) {
    if (TryFusedPinnedRmw(pc) || TryConstFold(pc) || TryCmpMemFold(pc)) {
      return Status::OK();
    }
    const Instr& ins = m_.code[pc];
    switch (ins.op) {
      case Op::kNop:
        break;
      case Op::kIConst: {
        Reg r = AllocReg();
        a_.MovRegImm64(r, ins.imm);
        PushReg(r);
        break;
      }
      case Op::kILoad:
      case Op::kALoad: {
        if (IsPinned(ins.a)) {
          stack_.push_back({StackEntry::Kind::kAlias, Reg::RAX, ins.a});
        } else {
          Reg r = AllocReg();
          a_.MovRegMem(r, kLocals, static_cast<int32_t>(ins.a * 8));
          PushReg(r);
        }
        break;
      }
      case Op::kIStore:
      case Op::kAStore: {
        Operand v = PopSource();
        if (IsPinned(ins.a)) {
          MaterializeAliasesOf(ins.a);
          if (v.reg != PinReg(ins.a)) {
            a_.MovRegReg(PinReg(ins.a), v.reg);
          }
        } else {
          a_.MovMemReg(kLocals, static_cast<int32_t>(ins.a * 8), v.reg);
        }
        FreeOperand(v);
        break;
      }
      case Op::kIAdd: case Op::kISub: case Op::kIMul:
      case Op::kIAnd: case Op::kIOr: case Op::kIXor: {
        Operand b = PopSource();
        Operand a = PopMutable();
        switch (ins.op) {
          case Op::kIAdd: a_.AddRegReg(a.reg, b.reg); break;
          case Op::kISub: a_.SubRegReg(a.reg, b.reg); break;
          case Op::kIMul: a_.ImulRegReg(a.reg, b.reg); break;
          case Op::kIAnd: a_.AndRegReg(a.reg, b.reg); break;
          case Op::kIOr: a_.OrRegReg(a.reg, b.reg); break;
          default: a_.XorRegReg(a.reg, b.reg); break;
        }
        FreeOperand(b);
        PushReg(a.reg);
        break;
      }
      case Op::kIDiv:
      case Op::kIRem: {
        Operand b = PopSource();
        Operand a = PopMutable();
        a_.TestRegReg(b.reg, b.reg);
        a_.Jcc(Cond::kE, trap_div_);
        X64Assembler::LabelId special = a_.NewLabel();
        X64Assembler::LabelId done = a_.NewLabel();
        a_.CmpRegImm32(b.reg, -1);
        a_.Jcc(Cond::kE, special);
        a_.MovRegReg(Reg::RAX, a.reg);
        a_.Cqo();
        a_.IdivReg(b.reg);
        a_.MovRegReg(a.reg, ins.op == Op::kIDiv ? Reg::RAX : Reg::RDX);
        a_.Jmp(done);
        a_.Bind(special);
        if (ins.op == Op::kIDiv) {
          a_.NegReg(a.reg);
        } else {
          a_.XorRegReg(a.reg, a.reg);
        }
        a_.Bind(done);
        FreeOperand(b);
        PushReg(a.reg);
        break;
      }
      case Op::kINeg: {
        Operand a = PopMutable();
        a_.NegReg(a.reg);
        PushReg(a.reg);
        break;
      }
      case Op::kIShl:
      case Op::kIShr:
      case Op::kIUShr: {
        Operand b = PopSource();
        a_.MovRegReg(Reg::RCX, b.reg);
        FreeOperand(b);
        Operand a = PopMutable();
        // Hardware masks the count to 63 for 64-bit shifts (matches the
        // interpreter's `& 63`).
        if (ins.op == Op::kIShl) a_.ShlRegCl(a.reg);
        else if (ins.op == Op::kIShr) a_.SarRegCl(a.reg);
        else a_.ShrRegCl(a.reg);
        PushReg(a.reg);
        break;
      }
      case Op::kIfICmpEq: case Op::kIfICmpNe: case Op::kIfICmpLt:
      case Op::kIfICmpLe: case Op::kIfICmpGt: case Op::kIfICmpGe: {
        Operand b = PopSource();
        Operand a = PopSource();
        Flush();
        a_.CmpRegReg(a.reg, b.reg);
        FreeOperand(a);
        FreeOperand(b);
        Cond cond;
        switch (ins.op) {
          case Op::kIfICmpEq: cond = Cond::kE; break;
          case Op::kIfICmpNe: cond = Cond::kNe; break;
          case Op::kIfICmpLt: cond = Cond::kL; break;
          case Op::kIfICmpLe: cond = Cond::kLe; break;
          case Op::kIfICmpGt: cond = Cond::kG; break;
          default: cond = Cond::kGe; break;
        }
        a_.Jcc(cond, block_labels_[ins.a]);
        break;
      }
      case Op::kIfEq:
      case Op::kIfNe: {
        Operand a = PopSource();
        Flush();
        a_.TestRegReg(a.reg, a.reg);
        FreeOperand(a);
        a_.Jcc(ins.op == Op::kIfEq ? Cond::kE : Cond::kNe,
               block_labels_[ins.a]);
        break;
      }
      case Op::kGoto:
        Flush();
        a_.Jmp(block_labels_[ins.a]);
        break;
      case Op::kBALoad: {
        Operand idx = PopSource();
        Operand arr = PopMutable();
        a_.CmpRegMem(idx.reg, arr.reg, ArrayObject::kLengthOffset);
        a_.Jcc(Cond::kAe, trap_bounds_);  // unsigned: negatives trap too
        a_.MovzxRegByte(arr.reg, arr.reg, idx.reg, ArrayObject::kDataOffset);
        FreeOperand(idx);
        PushReg(arr.reg);
        break;
      }
      case Op::kBAStore: {
        Operand val = PopSource();
        Operand idx = PopSource();
        Operand arr = PopSource();
        a_.CmpRegMem(idx.reg, arr.reg, ArrayObject::kLengthOffset);
        a_.Jcc(Cond::kAe, trap_bounds_);
        a_.MovByteMemReg(arr.reg, idx.reg, ArrayObject::kDataOffset, val.reg);
        FreeOperand(val);
        FreeOperand(idx);
        FreeOperand(arr);
        break;
      }
      case Op::kIALoad: {
        Operand idx = PopSource();
        Operand arr = PopMutable();
        a_.CmpRegMem(idx.reg, arr.reg, ArrayObject::kLengthOffset);
        a_.Jcc(Cond::kAe, trap_bounds_);
        a_.MovRegMemIndex8(arr.reg, arr.reg, idx.reg,
                           ArrayObject::kDataOffset);
        FreeOperand(idx);
        PushReg(arr.reg);
        break;
      }
      case Op::kIAStore: {
        Operand val = PopSource();
        Operand idx = PopSource();
        Operand arr = PopSource();
        a_.CmpRegMem(idx.reg, arr.reg, ArrayObject::kLengthOffset);
        a_.Jcc(Cond::kAe, trap_bounds_);
        a_.MovMemIndex8Reg(arr.reg, idx.reg, ArrayObject::kDataOffset,
                           val.reg);
        FreeOperand(val);
        FreeOperand(idx);
        FreeOperand(arr);
        break;
      }
      case Op::kArrayLen: {
        Operand arr = PopMutable();
        a_.MovRegMem(arr.reg, arr.reg, ArrayObject::kLengthOffset);
        PushReg(arr.reg);
        break;
      }
      case Op::kNewBArray:
      case Op::kNewIArray: {
        Flush();
        SaveCallerSavedPins();
        EmitBudgetWriteBack();
        size_t len_pos = stack_.size() - 1;
        stack_.pop_back();
        int64_t kind = ins.op == Op::kNewBArray
                           ? static_cast<int64_t>(ArrayObject::kByteKind)
                           : static_cast<int64_t>(ArrayObject::kIntKind);
        EmitHelperCall(reinterpret_cast<void*>(&jag_rt_newarray), [&] {
          a_.MovRegMem(Reg::RSI, kSpillBase, SlotDisp(len_pos));
          a_.MovRegImm64(Reg::RDX, kind);
        });
        a_.CmpMemImm32(kFrame, kFrameTrap, 0);
        a_.Jcc(Cond::kNe, trap_helper_);
        a_.MovMemReg(kSpillBase, SlotDisp(len_pos), Reg::RAX);
        stack_.push_back({StackEntry::Kind::kSpill});
        EmitBudgetReload();
        ReloadCallerSavedPins();
        break;
      }
      case Op::kCall:
      case Op::kCallNative: {
        JAGUAR_ASSIGN_OR_RETURN(Signature sig, CalleeSig(ins));
        const size_t nargs = sig.params.size();
        Flush();
        SaveCallerSavedPins();
        EmitBudgetWriteBack();
        const size_t base = stack_.size() - nargs;
        for (size_t i = 0; i < nargs; ++i) stack_.pop_back();
        void* helper = ins.op == Op::kCall
                           ? reinterpret_cast<void*>(&jag_rt_call)
                           : reinterpret_cast<void*>(&jag_rt_callnative);
        uint32_t idx = ins.a;
        EmitHelperCall(helper, [&] {
          a_.MovRegImm64(Reg::RSI, static_cast<int64_t>(idx));
          a_.LeaRegMem(Reg::RDX, kSpillBase, SlotDisp(base));
        });
        a_.TestRegReg(Reg::RAX, Reg::RAX);
        a_.Jcc(Cond::kNe, trap_helper_);
        if (!sig.returns_void) {
          stack_.push_back({StackEntry::Kind::kSpill});
        }
        EmitBudgetReload();
        ReloadCallerSavedPins();
        break;
      }
      case Op::kIReturn:
      case Op::kAReturn: {
        Operand v = PopSource();
        a_.MovRegReg(Reg::RAX, v.reg);
        FreeOperand(v);
        DiscardStack();  // remaining values are dead
        a_.Jmp(epilogue_);
        break;
      }
      case Op::kReturn:
        a_.XorRegReg(Reg::RAX, Reg::RAX);
        DiscardStack();
        a_.Jmp(epilogue_);
        break;
      case Op::kDup: {
        JAGUAR_CHECK(!stack_.empty()) << "JIT symbolic stack underflow";
        StackEntry top = stack_.back();
        if (top.kind == StackEntry::Kind::kAlias) {
          // Both entries denote the pinned local's current value; a later
          // store materializes them (copy-on-invalidate).
          stack_.push_back(top);
          break;
        }
        Reg r = AllocReg();
        if (top.kind == StackEntry::Kind::kReg) {
          a_.MovRegReg(r, top.reg);
        } else {
          a_.MovRegMem(r, kSpillBase, SlotDisp(stack_.size() - 1));
        }
        PushReg(r);
        break;
      }
      case Op::kPop: {
        Operand v = PopSource();
        FreeOperand(v);
        break;
      }
      case Op::kSwap: {
        // Spill entries are position-dependent, so the robust (and rare —
        // jjc never emits swap) path is: make everything canonical, then
        // exchange the two memory slots via scratch registers.
        Flush();
        size_t p1 = stack_.size() - 1;
        size_t p0 = p1 - 1;
        a_.MovRegMem(Reg::RAX, kSpillBase, SlotDisp(p0));
        a_.MovRegMem(Reg::RCX, kSpillBase, SlotDisp(p1));
        a_.MovMemReg(kSpillBase, SlotDisp(p0), Reg::RCX);
        a_.MovMemReg(kSpillBase, SlotDisp(p1), Reg::RAX);
        break;
      }
    }
    return Status::OK();
  }

  const LoadedClass& cls_;
  const VerifiedMethod& m_;
  X64Assembler a_;

  std::vector<bool> block_start_;
  std::vector<bool> loop_head_;
  std::vector<int> entry_depth_;
  std::vector<uint32_t> block_len_;
  std::vector<X64Assembler::LabelId> block_labels_;
  X64Assembler::LabelId trap_div_ = 0, trap_bounds_ = 0, trap_budget_ = 0,
                        trap_helper_ = 0, epilogue_ = 0;

  std::vector<StackEntry> stack_;
  bool reg_used_[kPoolSize] = {false};
  std::vector<int> pin_of_local_;
  size_t num_pins_ = 0;
  bool emit_budget_checks_ = true;
  uint32_t skip_ = 0;
};

}  // namespace

Result<std::unique_ptr<JitArtifact>> CompileMethod(
    const LoadedClass& cls, const VerifiedMethod& method,
    bool emit_budget_checks) {
  MethodCompiler compiler(cls, method, emit_budget_checks);
  return compiler.Compile();
}

#endif  // __x86_64__

}  // namespace jvm
}  // namespace jaguar
