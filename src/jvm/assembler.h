#ifndef JAGUAR_JVM_ASSEMBLER_H_
#define JAGUAR_JVM_ASSEMBLER_H_

/// \file assembler.h
/// Textual JagVM assembly → class file. Used by tests, the property-based
/// JIT/interpreter differential suite, and anyone writing a UDF below the
/// JJava level.
///
/// Syntax (one directive/instruction per line; `;` starts a comment):
///
///     class Checksum
///     method run (B)I locals=3
///       iconst 0          ; acc
///       istore 1
///       iconst 0          ; i
///       istore 2
///     loop:
///       iload 2
///       aload 0
///       arraylen
///       if_icmpge done
///       iload 1
///       aload 0
///       iload 2
///       baload
///       iadd
///       istore 1
///       iload 2
///       iconst 1
///       iadd
///       istore 2
///       goto loop
///     done:
///       iload 1
///       ireturn
///     end
///
/// Calls name their target and signature inline:
///     call Helper.sum (II)I
///     callnative Jaguar.callback (II)I

#include <string>

#include "common/status.h"
#include "jvm/class_file.h"

namespace jaguar {
namespace jvm {

/// Assembles `source` into a class file. Errors carry line numbers.
Result<ClassFile> Assemble(const std::string& source);

}  // namespace jvm
}  // namespace jaguar

#endif  // JAGUAR_JVM_ASSEMBLER_H_
