#include "jvm/verifier.h"

#include <deque>
#include <optional>

#include "common/string_util.h"

namespace jaguar {
namespace jvm {

namespace {

/// Lattice of slot types. kUninit is the top/conflict element: reading it is
/// an error, merging conflicting types produces it.
enum class LType : uint8_t { kUninit, kInt, kBArr, kIArr };

LType FromVType(VType t) {
  switch (t) {
    case VType::kInt: return LType::kInt;
    case VType::kByteArray: return LType::kBArr;
    case VType::kIntArray: return LType::kIArr;
  }
  return LType::kUninit;
}

const char* LTypeName(LType t) {
  switch (t) {
    case LType::kUninit: return "uninitialized";
    case LType::kInt: return "int";
    case LType::kBArr: return "byte[]";
    case LType::kIArr: return "int[]";
  }
  return "?";
}

struct VState {
  std::vector<LType> locals;
  std::vector<LType> stack;

  bool operator==(const VState& o) const {
    return locals == o.locals && stack == o.stack;
  }
};

/// Per-method verification context.
class MethodVerifier {
 public:
  MethodVerifier(const ClassFile& cf, const MethodDef& def, std::string name,
                 Signature sig)
      : cf_(cf), def_(def), name_(std::move(name)), sig_(std::move(sig)) {}

  Result<VerifiedMethod> Run() {
    if (def_.max_locals > kMaxLocals) {
      return Fail(0, "max_locals exceeds limit");
    }
    if (def_.code.size() > kMaxCodeBytes) {
      return Fail(0, "code too large");
    }
    if (sig_.params.size() > def_.max_locals) {
      return Fail(0, "max_locals smaller than parameter count");
    }
    JAGUAR_ASSIGN_OR_RETURN(code_, DecodeCode(def_.code));
    if (code_.empty()) return Fail(0, "empty code");
    JAGUAR_RETURN_IF_ERROR(RetargetBranches(&code_));

    // Entry state: parameters in locals[0..n), everything else uninitialized.
    VState entry;
    entry.locals.assign(def_.max_locals, LType::kUninit);
    for (size_t i = 0; i < sig_.params.size(); ++i) {
      entry.locals[i] = FromVType(sig_.params[i]);
    }

    states_.assign(code_.size(), std::nullopt);
    JAGUAR_RETURN_IF_ERROR(MergeInto(0, entry));
    while (!worklist_.empty()) {
      uint32_t pc = worklist_.front();
      worklist_.pop_front();
      JAGUAR_RETURN_IF_ERROR(Flow(pc));
    }

    VerifiedMethod out;
    out.name = name_;
    out.sig = sig_;
    out.max_locals = def_.max_locals;
    out.max_stack = max_stack_seen_;
    if (def_.max_stack != 0 && max_stack_seen_ > def_.max_stack) {
      return Fail(0, StringPrintf("computed max stack %u exceeds declared %u",
                                  max_stack_seen_, def_.max_stack));
    }
    out.code = std::move(code_);
    return out;
  }

 private:
  Status Fail(uint32_t pc, const std::string& msg) {
    return VerificationError(StringPrintf("method %s, instruction %u: %s",
                                          name_.c_str(), pc, msg.c_str()));
  }

  Status MergeInto(uint32_t pc, const VState& incoming) {
    if (pc >= code_.size()) {
      return Fail(pc, "control flows past end of code");
    }
    if (incoming.stack.size() > kMaxStackLimit) {
      return Fail(pc, "operand stack too deep");
    }
    if (incoming.stack.size() > max_stack_seen_) {
      max_stack_seen_ = static_cast<uint16_t>(incoming.stack.size());
    }
    std::optional<VState>& existing = states_[pc];
    if (!existing.has_value()) {
      existing = incoming;
      worklist_.push_back(pc);
      return Status::OK();
    }
    if (existing->stack.size() != incoming.stack.size()) {
      return Fail(pc, "conflicting stack depths at merge point");
    }
    bool changed = false;
    for (size_t i = 0; i < incoming.stack.size(); ++i) {
      if (existing->stack[i] != incoming.stack[i]) {
        // No subtyping between our types: a conflicting stack slot is a hard
        // error (it would be unusable anyway, and allowing it would force the
        // runtime to carry type tags).
        return Fail(pc, StringPrintf("conflicting stack types at merge "
                                     "(slot %zu: %s vs %s)",
                                     i, LTypeName(existing->stack[i]),
                                     LTypeName(incoming.stack[i])));
      }
    }
    for (size_t i = 0; i < incoming.locals.size(); ++i) {
      if (existing->locals[i] != incoming.locals[i] &&
          existing->locals[i] != LType::kUninit) {
        existing->locals[i] = LType::kUninit;  // conflicting local: poisoned
        changed = true;
      }
    }
    if (changed) worklist_.push_back(pc);
    return Status::OK();
  }

  Result<LType> Pop(VState* s, uint32_t pc) {
    if (s->stack.empty()) return Fail(pc, "operand stack underflow");
    LType t = s->stack.back();
    s->stack.pop_back();
    return t;
  }

  Status PopExpect(VState* s, uint32_t pc, LType want, const char* what) {
    JAGUAR_ASSIGN_OR_RETURN(LType got, Pop(s, pc));
    if (got != want) {
      return Fail(pc, StringPrintf("%s expects %s on stack, found %s", what,
                                   LTypeName(want), LTypeName(got)));
    }
    return Status::OK();
  }

  Status CheckLocal(uint32_t pc, uint32_t idx) {
    if (idx >= def_.max_locals) {
      return Fail(pc, StringPrintf("local index %u out of range", idx));
    }
    return Status::OK();
  }

  /// Applies one instruction to `state` and propagates to successors.
  Status Flow(uint32_t pc) {
    VState state = *states_[pc];
    const Instr& ins = code_[pc];
    const char* op_name = OpToString(ins.op);
    bool falls_through = true;

    switch (ins.op) {
      case Op::kNop:
        break;
      case Op::kIConst:
        state.stack.push_back(LType::kInt);
        break;
      case Op::kILoad: {
        JAGUAR_RETURN_IF_ERROR(CheckLocal(pc, ins.a));
        if (state.locals[ins.a] != LType::kInt) {
          return Fail(pc, StringPrintf("iload of %s local %u",
                                       LTypeName(state.locals[ins.a]), ins.a));
        }
        state.stack.push_back(LType::kInt);
        break;
      }
      case Op::kIStore: {
        JAGUAR_RETURN_IF_ERROR(CheckLocal(pc, ins.a));
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        state.locals[ins.a] = LType::kInt;
        break;
      }
      case Op::kALoad: {
        JAGUAR_RETURN_IF_ERROR(CheckLocal(pc, ins.a));
        LType t = state.locals[ins.a];
        if (t != LType::kBArr && t != LType::kIArr) {
          return Fail(pc, StringPrintf("aload of %s local %u", LTypeName(t),
                                       ins.a));
        }
        state.stack.push_back(t);
        break;
      }
      case Op::kAStore: {
        JAGUAR_RETURN_IF_ERROR(CheckLocal(pc, ins.a));
        JAGUAR_ASSIGN_OR_RETURN(LType t, Pop(&state, pc));
        if (t != LType::kBArr && t != LType::kIArr) {
          return Fail(pc, "astore of non-reference");
        }
        state.locals[ins.a] = t;
        break;
      }
      case Op::kIAdd: case Op::kISub: case Op::kIMul: case Op::kIDiv:
      case Op::kIRem: case Op::kIAnd: case Op::kIOr: case Op::kIXor:
      case Op::kIShl: case Op::kIShr: case Op::kIUShr:
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        state.stack.push_back(LType::kInt);
        break;
      case Op::kINeg:
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        state.stack.push_back(LType::kInt);
        break;
      case Op::kIfICmpEq: case Op::kIfICmpNe: case Op::kIfICmpLt:
      case Op::kIfICmpLe: case Op::kIfICmpGt: case Op::kIfICmpGe:
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        JAGUAR_RETURN_IF_ERROR(MergeInto(ins.a, state));
        break;
      case Op::kIfEq: case Op::kIfNe:
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        JAGUAR_RETURN_IF_ERROR(MergeInto(ins.a, state));
        break;
      case Op::kGoto:
        JAGUAR_RETURN_IF_ERROR(MergeInto(ins.a, state));
        falls_through = false;
        break;
      case Op::kBALoad:
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kBArr, op_name));
        state.stack.push_back(LType::kInt);
        break;
      case Op::kBAStore:
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kBArr, op_name));
        break;
      case Op::kIALoad:
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kIArr, op_name));
        state.stack.push_back(LType::kInt);
        break;
      case Op::kIAStore:
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kIArr, op_name));
        break;
      case Op::kArrayLen: {
        JAGUAR_ASSIGN_OR_RETURN(LType t, Pop(&state, pc));
        if (t != LType::kBArr && t != LType::kIArr) {
          return Fail(pc, "arraylen of non-array");
        }
        state.stack.push_back(LType::kInt);
        break;
      }
      case Op::kNewBArray:
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        state.stack.push_back(LType::kBArr);
        break;
      case Op::kNewIArray:
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        state.stack.push_back(LType::kIArr);
        break;
      case Op::kCall: {
        JAGUAR_ASSIGN_OR_RETURN(
            const ConstEntry* e,
            cf_.GetEntry(static_cast<uint16_t>(ins.a), ConstKind::kMethodRef));
        JAGUAR_ASSIGN_OR_RETURN(const std::string* sig_text,
                                cf_.GetUtf8(e->sig_idx));
        JAGUAR_RETURN_IF_ERROR(cf_.GetUtf8(e->class_idx).status());
        JAGUAR_RETURN_IF_ERROR(cf_.GetUtf8(e->name_idx).status());
        JAGUAR_ASSIGN_OR_RETURN(Signature callee, Signature::Parse(*sig_text));
        JAGUAR_RETURN_IF_ERROR(ApplyCall(&state, pc, callee));
        break;
      }
      case Op::kCallNative: {
        JAGUAR_ASSIGN_OR_RETURN(
            const ConstEntry* e,
            cf_.GetEntry(static_cast<uint16_t>(ins.a), ConstKind::kNativeRef));
        JAGUAR_ASSIGN_OR_RETURN(const std::string* sig_text,
                                cf_.GetUtf8(e->sig_idx));
        JAGUAR_RETURN_IF_ERROR(cf_.GetUtf8(e->name_idx).status());
        JAGUAR_ASSIGN_OR_RETURN(Signature callee, Signature::Parse(*sig_text));
        JAGUAR_RETURN_IF_ERROR(ApplyCall(&state, pc, callee));
        break;
      }
      case Op::kIReturn:
        if (sig_.returns_void || sig_.return_type != VType::kInt) {
          return Fail(pc, "ireturn in a method that does not return int");
        }
        JAGUAR_RETURN_IF_ERROR(PopExpect(&state, pc, LType::kInt, op_name));
        falls_through = false;
        break;
      case Op::kAReturn: {
        if (sig_.returns_void || sig_.return_type == VType::kInt) {
          return Fail(pc, "areturn in a method that does not return an array");
        }
        JAGUAR_RETURN_IF_ERROR(PopExpect(
            &state, pc, FromVType(sig_.return_type), op_name));
        falls_through = false;
        break;
      }
      case Op::kReturn:
        if (!sig_.returns_void) {
          return Fail(pc, "return in a non-void method");
        }
        falls_through = false;
        break;
      case Op::kDup: {
        if (state.stack.empty()) return Fail(pc, "dup on empty stack");
        state.stack.push_back(state.stack.back());
        break;
      }
      case Op::kPop:
        JAGUAR_RETURN_IF_ERROR(Pop(&state, pc).status());
        break;
      case Op::kSwap: {
        if (state.stack.size() < 2) return Fail(pc, "swap needs two operands");
        std::swap(state.stack[state.stack.size() - 1],
                  state.stack[state.stack.size() - 2]);
        break;
      }
    }

    if (falls_through) {
      if (pc + 1 >= code_.size()) {
        return Fail(pc, "control falls off the end of the code");
      }
      JAGUAR_RETURN_IF_ERROR(MergeInto(pc + 1, state));
    }
    return Status::OK();
  }

  Status ApplyCall(VState* state, uint32_t pc, const Signature& callee) {
    // Arguments are pushed left-to-right, so they pop right-to-left.
    for (size_t i = callee.params.size(); i > 0; --i) {
      JAGUAR_RETURN_IF_ERROR(
          PopExpect(state, pc, FromVType(callee.params[i - 1]), "call"));
    }
    if (!callee.returns_void) {
      state->stack.push_back(FromVType(callee.return_type));
      if (state->stack.size() > kMaxStackLimit) {
        return Fail(pc, "operand stack too deep");
      }
      if (state->stack.size() > max_stack_seen_) {
        max_stack_seen_ = static_cast<uint16_t>(state->stack.size());
      }
    }
    return Status::OK();
  }

  const ClassFile& cf_;
  const MethodDef& def_;
  std::string name_;
  Signature sig_;
  std::vector<Instr> code_;
  std::vector<std::optional<VState>> states_;
  std::deque<uint32_t> worklist_;
  uint16_t max_stack_seen_ = 0;
};

}  // namespace

Result<const VerifiedMethod*> VerifiedClass::FindMethod(
    const std::string& method_name) const {
  for (const VerifiedMethod& m : methods) {
    if (m.name == method_name) return &m;
  }
  return NotFound("no method '" + method_name + "' in class " + name);
}

Result<VerifiedClass> Verify(const ClassFile& cf) {
  if (cf.class_name.empty()) {
    return VerificationError("class has no name");
  }
  if (cf.methods.size() > kMaxMethodsPerClass) {
    return VerificationError("too many methods");
  }
  VerifiedClass out;
  out.name = cf.class_name;
  out.cf = cf;
  for (const MethodDef& def : cf.methods) {
    JAGUAR_ASSIGN_OR_RETURN(std::string name, cf.MethodName(def));
    JAGUAR_ASSIGN_OR_RETURN(Signature sig, cf.MethodSignature(def));
    for (const VerifiedMethod& existing : out.methods) {
      if (existing.name == name) {
        return VerificationError("duplicate method name '" + name + "'");
      }
    }
    MethodVerifier verifier(cf, def, name, sig);
    JAGUAR_ASSIGN_OR_RETURN(VerifiedMethod vm, verifier.Run());
    out.methods.push_back(std::move(vm));
  }
  return out;
}

}  // namespace jvm
}  // namespace jaguar
