#ifndef JAGUAR_JVM_JIT_H_
#define JAGUAR_JVM_JIT_H_

/// \file jit.h
/// The JagVM baseline JIT: translates verified bytecode to x86-64 machine
/// code at first call, method at a time — the ingredient that lets Java-style
/// UDFs match native computation speed in Figure 6 of the paper, while still
/// emitting a **real bounds check on every array access** (the measured cost
/// in Figure 7) and a budget check per basic block (Section 6.2 resource
/// policing).
///
/// Compilation strategy ("symbolic operand stack"):
///  * The operand stack is simulated at compile time. Within a basic block,
///    stack values live in registers drawn from a pool (RSI, RDI, R8-R11);
///    the pool spills to canonical frame slots when exhausted.
///  * At basic-block boundaries every stack value is flushed to its canonical
///    memory slot, so control-flow merges need no reconciliation.
///  * Pinned registers: RBX = locals base, R13 = canonical stack base,
///    R14 = JitCallFrame*, R12 = instruction-budget pointer.
///    RAX/RCX/RDX are scratch (division, shifts, addressing).
///  * Calls (bytecode `call`/`callnative`) and allocations go through C++
///    runtime helpers; the symbolic stack is flushed around them.
///  * Traps (bounds, div-by-zero, budget, helper errors) jump to a common
///    exit that stores the trap code in the frame.

#include <memory>

#include "common/status.h"
#include "jvm/class_loader.h"
#include "jvm/x64_assembler.h"

namespace jaguar {
namespace jvm {

struct JitCallFrame;

/// Owns the executable code for one compiled method.
class JitArtifact {
 public:
  using Fn = int64_t (*)(JitCallFrame*);

  explicit JitArtifact(ExecutableMemory memory) : memory_(std::move(memory)) {}

  Fn entry() const {
    return reinterpret_cast<Fn>(const_cast<void*>(memory_.entry()));
  }
  size_t code_size() const { return memory_.size(); }

 private:
  ExecutableMemory memory_;
};

/// Compiles `method` (defined in `cls`). Returns NotSupported on non-x86-64
/// builds; the VM then falls back to interpretation.
/// \param emit_budget_checks emit the per-basic-block instruction-budget
/// charge (the Section 6.2 CPU accounting). Disabling it reproduces the
/// paper's 1998 JVMs, which had no resource policing — used by the
/// resource-accounting ablation bench.
Result<std::unique_ptr<JitArtifact>> CompileMethod(
    const LoadedClass& cls, const VerifiedMethod& method,
    bool emit_budget_checks = true);

}  // namespace jvm
}  // namespace jaguar

#endif  // JAGUAR_JVM_JIT_H_
