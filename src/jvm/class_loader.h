#ifndef JAGUAR_JVM_CLASS_LOADER_H_
#define JAGUAR_JVM_CLASS_LOADER_H_

/// \file class_loader.h
/// Namespace-isolating class loaders, mirroring Section 6.1: "a UDF can be
/// loaded with a special class loader that isolates the UDF's namespace from
/// that of other UDFs and prevents interactions between them."
///
/// A loader resolves names first in its own namespace, then (like Java's
/// delegation model) in its parent chain — typically a shared "system" loader
/// holding trusted library classes. Two UDF loaders with the same parent
/// cannot see each other's classes, even under identical class names.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "jvm/verifier.h"

namespace jaguar {
namespace jvm {

class ClassLoader;

/// A verified class bound to its defining loader, with lazily filled
/// resolution caches (the VM is single-threaded per invocation, matching
/// PREDATOR's serial expression evaluation).
struct LoadedClass {
  VerifiedClass cls;
  const ClassLoader* loader = nullptr;

  struct ResolvedMethod {
    const LoadedClass* target_class;
    const VerifiedMethod* method;
  };
  /// Per-constant-pool-index caches, sized on first use.
  mutable std::vector<std::optional<ResolvedMethod>> method_cache;
  mutable std::vector<const struct NativeMethod*> native_cache;
};

class ClassLoader {
 public:
  /// \param parent delegation parent (not owned); null for a root loader.
  explicit ClassLoader(const ClassLoader* parent = nullptr)
      : parent_(parent) {}

  /// Parses, **verifies**, and defines a class from untrusted bytes. Fails
  /// with AlreadyExists if this namespace already defines the name.
  Result<const LoadedClass*> LoadClass(Slice class_file_bytes);

  /// Defines an already-verified class (compiler output inside the process).
  Result<const LoadedClass*> DefineClass(VerifiedClass cls);

  /// Looks up `name` in this namespace, then the parent chain.
  Result<const LoadedClass*> FindClass(const std::string& name) const;

  /// \return Names defined directly in this namespace (not the parents').
  std::vector<std::string> ListClasses() const;

  const ClassLoader* parent() const { return parent_; }

 private:
  const ClassLoader* parent_;
  std::map<std::string, std::unique_ptr<LoadedClass>> classes_;
};

}  // namespace jvm
}  // namespace jaguar

#endif  // JAGUAR_JVM_CLASS_LOADER_H_
