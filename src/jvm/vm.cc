#include "jvm/vm.h"

#include "common/string_util.h"
#include "jvm/interpreter.h"
#include "jvm/jit.h"
#include "obs/metrics.h"

namespace jaguar {
namespace jvm {

Status TrapToStatus(Trap trap, const Status& pending) {
  switch (trap) {
    case Trap::kNone:
      return Status::OK();
    case Trap::kDivByZero:
      return RuntimeError("division by zero");
    case Trap::kBounds:
      return RuntimeError("array index out of bounds");
    case Trap::kBudget:
      return ResourceExhausted("UDF exceeded its instruction budget");
    case Trap::kHeap:
      return ResourceExhausted("UDF exceeded its heap quota");
    case Trap::kDepth:
      return ResourceExhausted("UDF exceeded the call-depth limit");
    case Trap::kSecurity:
      return pending.ok() ? SecurityViolation("permission denied") : pending;
    case Trap::kNative:
      return pending.ok() ? RuntimeError("native method failed") : pending;
    case Trap::kInternal:
      return Internal("JIT internal trap");
  }
  return Internal("unknown trap code");
}

Jvm::Jvm(JvmOptions options) : options_(options) {}
Jvm::~Jvm() = default;

Status Jvm::RegisterNative(NativeMethod method) {
  if (natives_.count(method.name) != 0) {
    return AlreadyExists("native method '" + method.name +
                         "' already registered");
  }
  natives_[method.name] = std::move(method);
  return Status::OK();
}

Result<const NativeMethod*> Jvm::FindNative(const std::string& name) const {
  auto it = natives_.find(name);
  if (it == natives_.end()) {
    return NotFound("no native method named '" + name + "'");
  }
  return &it->second;
}

Result<const void*> Jvm::GetJitEntry(const LoadedClass& cls,
                                     const VerifiedMethod& method) {
  std::lock_guard<std::mutex> lock(jit_mutex_);
  auto it = jit_cache_.find(&method);
  if (it != jit_cache_.end()) {
    return it->second ? static_cast<const void*>(
                            reinterpret_cast<void*>(it->second->entry()))
                      : nullptr;
  }
  static obs::Counter* compiled_methods =
      obs::MetricsRegistry::Global()->GetCounter("jvm.jit.compiled_methods");
  static obs::Counter* code_bytes =
      obs::MetricsRegistry::Global()->GetCounter("jvm.jit.code_bytes");
  static obs::Histogram* compile_ns =
      obs::MetricsRegistry::Global()->GetHistogram("jvm.jit.compile_ns");

  Result<std::unique_ptr<JitArtifact>> compiled = [&] {
    obs::Timer timer(compile_ns);
    return CompileMethod(cls, method, options_.jit_budget_checks);
  }();
  if (!compiled.ok()) {
    if (compiled.status().IsNotSupported()) {
      // Remember the failure so we interpret without retrying every call.
      jit_cache_[&method] = nullptr;
      return nullptr;
    }
    return compiled.status();
  }
  ++stats_.methods_jitted;
  compiled_methods->Add();
  code_bytes->Add((*compiled)->code_size());
  JitArtifact* artifact = compiled->get();
  jit_cache_[&method] = std::move(compiled).value();
  return static_cast<const void*>(reinterpret_cast<void*>(artifact->entry()));
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

namespace {
/// Guards the per-class resolution caches (LoadedClass::method_cache /
/// native_cache), which are lazily filled on first call and may be hit from
/// every worker thread of a parallel query. Resolution is rare (once per
/// call site per class), so one process-wide mutex is plenty.
std::mutex& ResolveMutex() {
  static std::mutex m;
  return m;
}
}  // namespace

Result<LoadedClass::ResolvedMethod> ResolveCall(const LoadedClass& cls,
                                                uint32_t cpool_idx) {
  std::lock_guard<std::mutex> lock(ResolveMutex());
  if (cls.method_cache.size() <= cpool_idx) {
    cls.method_cache.resize(cls.cls.cf.cpool.size());
  }
  if (cpool_idx < cls.method_cache.size() &&
      cls.method_cache[cpool_idx].has_value()) {
    return *cls.method_cache[cpool_idx];
  }
  const ClassFile& cf = cls.cls.cf;
  JAGUAR_ASSIGN_OR_RETURN(
      const ConstEntry* e,
      cf.GetEntry(static_cast<uint16_t>(cpool_idx), ConstKind::kMethodRef));
  JAGUAR_ASSIGN_OR_RETURN(const std::string* class_name,
                          cf.GetUtf8(e->class_idx));
  JAGUAR_ASSIGN_OR_RETURN(const std::string* method_name,
                          cf.GetUtf8(e->name_idx));
  JAGUAR_ASSIGN_OR_RETURN(const std::string* sig_text, cf.GetUtf8(e->sig_idx));
  JAGUAR_ASSIGN_OR_RETURN(Signature declared, Signature::Parse(*sig_text));

  JAGUAR_ASSIGN_OR_RETURN(const LoadedClass* target,
                          cls.loader->FindClass(*class_name));
  JAGUAR_ASSIGN_OR_RETURN(const VerifiedMethod* method,
                          target->cls.FindMethod(*method_name));
  // Link-time signature check: the verifier trusted the declared signature;
  // here we prove it matches the actual target.
  if (!(method->sig == declared)) {
    return VerificationError(StringPrintf(
        "signature mismatch calling %s.%s: declared %s, actual %s",
        class_name->c_str(), method_name->c_str(), sig_text->c_str(),
        method->sig.ToString().c_str()));
  }
  LoadedClass::ResolvedMethod resolved{target, method};
  cls.method_cache[cpool_idx] = resolved;
  return resolved;
}

Result<const NativeMethod*> ResolveNative(Jvm* vm, const LoadedClass& cls,
                                          uint32_t cpool_idx) {
  std::lock_guard<std::mutex> lock(ResolveMutex());
  if (cls.native_cache.size() <= cpool_idx) {
    cls.native_cache.resize(cls.cls.cf.cpool.size(), nullptr);
  }
  if (cpool_idx < cls.native_cache.size() &&
      cls.native_cache[cpool_idx] != nullptr) {
    return cls.native_cache[cpool_idx];
  }
  const ClassFile& cf = cls.cls.cf;
  JAGUAR_ASSIGN_OR_RETURN(
      const ConstEntry* e,
      cf.GetEntry(static_cast<uint16_t>(cpool_idx), ConstKind::kNativeRef));
  JAGUAR_ASSIGN_OR_RETURN(const std::string* name, cf.GetUtf8(e->name_idx));
  JAGUAR_ASSIGN_OR_RETURN(const std::string* sig_text, cf.GetUtf8(e->sig_idx));
  JAGUAR_ASSIGN_OR_RETURN(Signature declared, Signature::Parse(*sig_text));
  JAGUAR_ASSIGN_OR_RETURN(const NativeMethod* native, vm->FindNative(*name));
  if (!(native->sig == declared)) {
    return VerificationError(StringPrintf(
        "signature mismatch calling native %s: declared %s, actual %s",
        name->c_str(), sig_text->c_str(), native->sig.ToString().c_str()));
  }
  cls.native_cache[cpool_idx] = native;
  return native;
}

Result<int64_t> InvokeNative(ExecContext* ctx, const NativeMethod& native,
                             const int64_t* args) {
  // The security manager is consulted on *every* native call, exactly as the
  // Java security manager is invoked per environment-affecting action.
  JAGUAR_RETURN_IF_ERROR(ctx->security()->Check(native.permission));
  ctx->count_native_call();
  NativeCallInfo info;
  info.ctx = ctx;
  info.args = args;
  JAGUAR_RETURN_IF_ERROR(native.fn(&info));
  return info.result;
}

// ---------------------------------------------------------------------------
// ExecContext
// ---------------------------------------------------------------------------

namespace {
// "Unlimited" still uses a finite sentinel so `instructions_retired` works.
constexpr int64_t kUnlimitedBudget = int64_t{1} << 62;
// Deadline probe rate for JIT code: an estimate of how many bytecodes per
// millisecond the machine can retire. The probe budget derived from the
// remaining wall time bounds how much longer a runaway loop survives past
// expiry; on machines that retire faster than this rate the probe can trap
// somewhat *before* the wall deadline, which is why a trap on a
// deadline-derived budget is always reported as DeadlineExceeded — the
// budget exists solely to enforce the deadline.
constexpr int64_t kDeadlineInstructionsPerMs = 4'000'000;
}  // namespace

ExecContext::ExecContext(Jvm* vm, const ClassLoader* loader,
                         const SecurityManager* security,
                         ResourceLimits limits, void* user_data)
    : vm_(vm),
      loader_(loader),
      security_(security),
      limits_(limits),
      heap_(limits.heap_quota_bytes),
      budget_(limits.instruction_budget > 0 ? limits.instruction_budget
                                            : kUnlimitedBudget),
      initial_budget_(budget_),
      user_data_(user_data) {
  // One ExecContext == one language-boundary crossing ("our JNIEnv"): the
  // scalar runner builds N of these for N tuples, the batched runner one.
  static obs::Counter* crossings =
      obs::MetricsRegistry::Global()->GetCounter("jvm.boundary.crossings");
  crossings->Add();
}

Result<ArrayObject*> ExecContext::NewByteArray(Slice data) {
  return heap_.NewByteArrayFrom(data);
}

Result<ArrayObject*> ExecContext::NewIntArray(const std::vector<int64_t>& data) {
  JAGUAR_ASSIGN_OR_RETURN(ArrayObject* arr, heap_.NewIntArray(data.size()));
  for (size_t i = 0; i < data.size(); ++i) arr->ints()[i] = data[i];
  return arr;
}

std::vector<uint8_t> ExecContext::ReadByteArray(const ArrayObject* arr) {
  return std::vector<uint8_t>(arr->bytes(), arr->bytes() + arr->length);
}

Status ExecContext::EnterCall() {
  if (depth_ >= limits_.max_call_depth) {
    return ResourceExhausted("UDF exceeded the call-depth limit");
  }
  ++depth_;
  return Status::OK();
}

Result<int64_t> ExecContext::CallStatic(const std::string& cls_name,
                                        const std::string& method_name,
                                        const std::vector<int64_t>& args) {
  JAGUAR_ASSIGN_OR_RETURN(ResolvedStatic target,
                          ResolveStatic(cls_name, method_name));
  return CallResolvedStatic(target, args);
}

Result<ExecContext::ResolvedStatic> ExecContext::ResolveStatic(
    const std::string& cls_name, const std::string& method_name) const {
  JAGUAR_ASSIGN_OR_RETURN(const LoadedClass* cls, loader_->FindClass(cls_name));
  JAGUAR_ASSIGN_OR_RETURN(const VerifiedMethod* method,
                          cls->cls.FindMethod(method_name));
  return ResolvedStatic{cls, method};
}

Result<int64_t> ExecContext::CallResolvedStatic(
    const ResolvedStatic& target, const std::vector<int64_t>& args) {
  if (args.size() != target.method->sig.params.size()) {
    return InvalidArgument(StringPrintf(
        "%s.%s expects %zu arguments, got %zu", target.cls->cls.name.c_str(),
        target.method->name.c_str(), target.method->sig.params.size(),
        args.size()));
  }
  ++vm_->stats_.invocations;
  return CallResolved(*target.cls, *target.method, args.data());
}

void ExecContext::ResetForNextItem() {
  heap_.Reset();
  budget_ = initial_budget_;
  pending_error_ = Status::OK();
  ApplyDeadlineBudgetCap();
}

void ExecContext::set_deadline(const QueryDeadline* deadline) {
  deadline_ = deadline;
  ApplyDeadlineBudgetCap();
}

void ExecContext::ApplyDeadlineBudgetCap() {
  if (deadline_ == nullptr || !deadline_->active()) return;
  // A configured finite budget is the tighter bound already; only an
  // unlimited budget needs a cap for JIT code to remain stoppable.
  if (initial_budget_ != kUnlimitedBudget) return;
  const int64_t remaining_ms = deadline_->RemainingNanos() / 1000000;
  const int64_t probe =
      remaining_ms > 0 ? remaining_ms * kDeadlineInstructionsPerMs : 1;
  if (probe < budget_) budget_ = probe;
  deadline_budget_ = true;
}

Result<int64_t> ExecContext::CallResolved(const LoadedClass& cls,
                                          const VerifiedMethod& method,
                                          const int64_t* args) {
  if (vm_->options_.enable_jit) {
    JAGUAR_ASSIGN_OR_RETURN(const void* entry, vm_->GetJitEntry(cls, method));
    if (entry != nullptr) {
      JAGUAR_RETURN_IF_ERROR(EnterCall());
      struct CallGuard {
        ExecContext* ctx;
        ~CallGuard() { ctx->LeaveCall(); }
      } guard{this};

      int64_t locals[kMaxLocals];
      int64_t spill[kMaxStackLimit];
      for (size_t i = 0; i < method.sig.params.size(); ++i) {
        locals[i] = args[i];
      }
      JitCallFrame frame;
      frame.locals = locals;
      frame.spill = spill;
      frame.ctx = this;
      frame.trap = 0;
      frame.budget = &budget_;
      frame.cls = &cls;
      auto fn = reinterpret_cast<JitArtifact::Fn>(
          reinterpret_cast<uintptr_t>(entry));
      int64_t ret = fn(&frame);
      if (frame.trap != 0) {
        Status s = TrapToStatus(static_cast<Trap>(frame.trap), pending_error_);
        pending_error_ = Status::OK();
        // A budget trap on a deadline-derived budget (or any budget trap
        // after the deadline passed) is the deadline firing through the
        // JIT's only interruption point.
        if (static_cast<Trap>(frame.trap) == Trap::kBudget &&
            deadline_ != nullptr &&
            (deadline_budget_ || deadline_->Expired())) {
          s = DeadlineExceeded("query exceeded its deadline of " +
                               std::to_string(deadline_->timeout_ms()) +
                               " ms (JIT budget probe)");
        }
        return s;
      }
      return ret;
    }
  }
  return Interpret(this, cls, method, args);
}

}  // namespace jvm
}  // namespace jaguar
