#include "jvm/heap.h"

#include <cstdlib>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace jaguar {
namespace jvm {

Result<ArrayObject*> VmHeap::Allocate(uint64_t len, uint64_t kind,
                                      uint64_t payload_bytes) {
  // Cap individual allocations well below address-space games.
  constexpr uint64_t kMaxArrayBytes = 1ULL << 32;
  if (payload_bytes > kMaxArrayBytes) {
    return ResourceExhausted("array allocation too large");
  }
  const size_t total = ArrayObject::kDataOffset + payload_bytes;
  if (quota_ != 0 && bytes_allocated_ + total > quota_) {
    return ResourceExhausted(StringPrintf(
        "UDF heap quota exceeded (%zu bytes used, %zu requested, quota %zu)",
        bytes_allocated_, total, quota_));
  }
  void* mem = std::calloc(1, total);
  if (mem == nullptr) return ResourceExhausted("out of memory");
  auto* arr = static_cast<ArrayObject*>(mem);
  arr->length = len;
  arr->kind = kind;
  bytes_allocated_ += total;
  objects_.push_back(arr);
  static obs::Counter* allocations =
      obs::MetricsRegistry::Global()->GetCounter("jvm.heap.allocations");
  static obs::Counter* alloc_bytes =
      obs::MetricsRegistry::Global()->GetCounter("jvm.heap.alloc_bytes");
  allocations->Add();
  alloc_bytes->Add(total);
  return arr;
}

void VmHeap::Reset() {
  // The pool-per-invocation model has no tracing GC; a Reset reclaims the
  // whole pool and is jaguar's equivalent of a collection.
  if (!objects_.empty()) {
    static obs::Counter* pool_resets =
        obs::MetricsRegistry::Global()->GetCounter("jvm.heap.pool_resets");
    pool_resets->Add();
  }
  for (ArrayObject* obj : objects_) std::free(obj);
  objects_.clear();
  bytes_allocated_ = 0;
}

}  // namespace jvm
}  // namespace jaguar
