#include "jvm/bytecode.h"

#include <unordered_map>

#include "common/string_util.h"

namespace jaguar {
namespace jvm {

const char* OpToString(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kIConst: return "iconst";
    case Op::kILoad: return "iload";
    case Op::kIStore: return "istore";
    case Op::kALoad: return "aload";
    case Op::kAStore: return "astore";
    case Op::kIAdd: return "iadd";
    case Op::kISub: return "isub";
    case Op::kIMul: return "imul";
    case Op::kIDiv: return "idiv";
    case Op::kIRem: return "irem";
    case Op::kINeg: return "ineg";
    case Op::kIAnd: return "iand";
    case Op::kIOr: return "ior";
    case Op::kIXor: return "ixor";
    case Op::kIShl: return "ishl";
    case Op::kIShr: return "ishr";
    case Op::kIUShr: return "iushr";
    case Op::kIfICmpEq: return "if_icmpeq";
    case Op::kIfICmpNe: return "if_icmpne";
    case Op::kIfICmpLt: return "if_icmplt";
    case Op::kIfICmpLe: return "if_icmple";
    case Op::kIfICmpGt: return "if_icmpgt";
    case Op::kIfICmpGe: return "if_icmpge";
    case Op::kIfEq: return "ifeq";
    case Op::kIfNe: return "ifne";
    case Op::kGoto: return "goto";
    case Op::kBALoad: return "baload";
    case Op::kBAStore: return "bastore";
    case Op::kIALoad: return "iaload";
    case Op::kIAStore: return "iastore";
    case Op::kArrayLen: return "arraylen";
    case Op::kNewBArray: return "newbarray";
    case Op::kNewIArray: return "newiarray";
    case Op::kCall: return "call";
    case Op::kCallNative: return "callnative";
    case Op::kIReturn: return "ireturn";
    case Op::kAReturn: return "areturn";
    case Op::kReturn: return "return";
    case Op::kDup: return "dup";
    case Op::kPop: return "pop";
    case Op::kSwap: return "swap";
  }
  return "?";
}

char VTypeToChar(VType t) {
  switch (t) {
    case VType::kInt: return 'I';
    case VType::kByteArray: return 'B';
    case VType::kIntArray: return 'A';
  }
  return '?';
}

Result<VType> VTypeFromChar(char c) {
  switch (c) {
    case 'I': return VType::kInt;
    case 'B': return VType::kByteArray;
    case 'A': return VType::kIntArray;
    default:
      return VerificationError(StringPrintf("bad type char '%c'", c));
  }
}

const char* VTypeToString(VType t) {
  switch (t) {
    case VType::kInt: return "int";
    case VType::kByteArray: return "byte[]";
    case VType::kIntArray: return "int[]";
  }
  return "?";
}

Result<Signature> Signature::Parse(const std::string& text) {
  Signature sig;
  if (text.size() < 3 || text[0] != '(') {
    return VerificationError("malformed signature: " + text);
  }
  size_t i = 1;
  while (i < text.size() && text[i] != ')') {
    JAGUAR_ASSIGN_OR_RETURN(VType t, VTypeFromChar(text[i]));
    sig.params.push_back(t);
    ++i;
  }
  if (i + 2 != text.size() || text[i] != ')') {
    return VerificationError("malformed signature: " + text);
  }
  char ret = text[i + 1];
  if (ret == 'V') {
    sig.returns_void = true;
  } else {
    JAGUAR_ASSIGN_OR_RETURN(sig.return_type, VTypeFromChar(ret));
  }
  return sig;
}

std::string Signature::ToString() const {
  std::string out = "(";
  for (VType t : params) out += VTypeToChar(t);
  out += ")";
  out += returns_void ? 'V' : VTypeToChar(return_type);
  return out;
}

bool Signature::operator==(const Signature& o) const {
  return params == o.params && returns_void == o.returns_void &&
         (returns_void || return_type == o.return_type);
}

bool IsBranch(Op op) {
  switch (op) {
    case Op::kIfICmpEq:
    case Op::kIfICmpNe:
    case Op::kIfICmpLt:
    case Op::kIfICmpLe:
    case Op::kIfICmpGt:
    case Op::kIfICmpGe:
    case Op::kIfEq:
    case Op::kIfNe:
    case Op::kGoto:
      return true;
    default:
      return false;
  }
}

bool IsBlockEnd(Op op) {
  switch (op) {
    case Op::kGoto:
    case Op::kIReturn:
    case Op::kAReturn:
    case Op::kReturn:
      return true;
    default:
      return false;
  }
}

namespace {

/// Operand layout per opcode: 0 = none, 8 = i64 imm, 4 = u32 `a`.
int OperandBytes(Op op) {
  if (op == Op::kIConst) return 8;
  switch (op) {
    case Op::kILoad:
    case Op::kIStore:
    case Op::kALoad:
    case Op::kAStore:
    case Op::kCall:
    case Op::kCallNative:
      return 4;
    default:
      return IsBranch(op) ? 4 : 0;
  }
}

bool IsValidOp(uint8_t byte) {
  Op op = static_cast<Op>(byte);
  switch (op) {
    case Op::kNop: case Op::kIConst: case Op::kILoad: case Op::kIStore:
    case Op::kALoad: case Op::kAStore: case Op::kIAdd: case Op::kISub:
    case Op::kIMul: case Op::kIDiv: case Op::kIRem: case Op::kINeg:
    case Op::kIAnd: case Op::kIOr: case Op::kIXor: case Op::kIShl:
    case Op::kIShr: case Op::kIUShr: case Op::kIfICmpEq: case Op::kIfICmpNe:
    case Op::kIfICmpLt: case Op::kIfICmpLe: case Op::kIfICmpGt:
    case Op::kIfICmpGe: case Op::kIfEq: case Op::kIfNe: case Op::kGoto:
    case Op::kBALoad: case Op::kBAStore: case Op::kIALoad: case Op::kIAStore:
    case Op::kArrayLen: case Op::kNewBArray: case Op::kNewIArray:
    case Op::kCall: case Op::kCallNative: case Op::kIReturn: case Op::kAReturn:
    case Op::kReturn: case Op::kDup: case Op::kPop: case Op::kSwap:
      return true;
  }
  return false;
}

}  // namespace

uint32_t CodeWriter::Emit(Op op) {
  uint32_t off = size();
  code_.push_back(static_cast<uint8_t>(op));
  return off;
}

uint32_t CodeWriter::EmitImm(Op op, int64_t imm) {
  uint32_t off = Emit(op);
  uint64_t v = static_cast<uint64_t>(imm);
  for (int i = 0; i < 8; ++i) code_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  return off;
}

uint32_t CodeWriter::EmitA(Op op, uint32_t a) {
  uint32_t off = Emit(op);
  for (int i = 0; i < 4; ++i) code_.push_back(static_cast<uint8_t>(a >> (8 * i)));
  return off;
}

void CodeWriter::PatchA(uint32_t instr_offset, uint32_t a) {
  for (int i = 0; i < 4; ++i) {
    code_[instr_offset + 1 + i] = static_cast<uint8_t>(a >> (8 * i));
  }
}

Result<std::vector<Instr>> DecodeCode(const std::vector<uint8_t>& code) {
  std::vector<Instr> out;
  size_t i = 0;
  while (i < code.size()) {
    if (!IsValidOp(code[i])) {
      return VerificationError(
          StringPrintf("unknown opcode 0x%02x at offset %zu", code[i], i));
    }
    Instr ins;
    ins.op = static_cast<Op>(code[i]);
    ins.offset = static_cast<uint32_t>(i);
    int nbytes = OperandBytes(ins.op);
    if (i + 1 + nbytes > code.size()) {
      return VerificationError(
          StringPrintf("truncated operand at offset %zu", i));
    }
    if (nbytes == 8) {
      uint64_t v = 0;
      for (int k = 0; k < 8; ++k) {
        v |= static_cast<uint64_t>(code[i + 1 + k]) << (8 * k);
      }
      ins.imm = static_cast<int64_t>(v);
    } else if (nbytes == 4) {
      uint32_t v = 0;
      for (int k = 0; k < 4; ++k) {
        v |= static_cast<uint32_t>(code[i + 1 + k]) << (8 * k);
      }
      ins.a = v;
    }
    out.push_back(ins);
    i += 1 + nbytes;
  }
  return out;
}

Status RetargetBranches(std::vector<Instr>* instrs) {
  std::unordered_map<uint32_t, uint32_t> offset_to_index;
  for (size_t i = 0; i < instrs->size(); ++i) {
    offset_to_index[(*instrs)[i].offset] = static_cast<uint32_t>(i);
  }
  for (Instr& ins : *instrs) {
    if (!IsBranch(ins.op)) continue;
    auto it = offset_to_index.find(ins.a);
    if (it == offset_to_index.end()) {
      return VerificationError(StringPrintf(
          "branch at offset %u targets mid-instruction offset %u", ins.offset,
          ins.a));
    }
    ins.a = it->second;
  }
  return Status::OK();
}

std::string Disassemble(const std::vector<Instr>& instrs) {
  std::string out;
  for (size_t i = 0; i < instrs.size(); ++i) {
    const Instr& ins = instrs[i];
    out += StringPrintf("%4zu: %-11s", i, OpToString(ins.op));
    if (ins.op == Op::kIConst) {
      out += StringPrintf(" %lld", static_cast<long long>(ins.imm));
    } else if (IsBranch(ins.op)) {
      out += StringPrintf(" ->%u", ins.a);
    } else if (OperandBytes(ins.op) == 4) {
      out += StringPrintf(" #%u", ins.a);
    }
    out += "\n";
  }
  return out;
}

}  // namespace jvm
}  // namespace jaguar
