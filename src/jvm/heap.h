#ifndef JAGUAR_JVM_HEAP_H_
#define JAGUAR_JVM_HEAP_H_

/// \file heap.h
/// The JagVM object heap: byte[] and int[] arrays with a hard byte quota.
///
/// Memory-management design (cf. Section 6.3 of the paper): rather than run a
/// tracing GC *inside* the database server — the paper documents how a JVM
/// garbage collector interacts badly with DBMS memory managers — JagVM uses
/// the database world's own idiom, which the paper itself points out:
/// allocate into a per-invocation pool and reclaim the entire pool when the
/// invocation ends. UDFs are side-effect-free expressions (Section 4), so no
/// object outlives its invocation; results are copied out across the
/// embedding boundary before the pool is reset.
///
/// Every allocation is charged against the quota — this is the J-Kernel-style
/// memory accounting the paper calls "essential in database systems"
/// (Section 6.2).

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace jaguar {
namespace jvm {

/// Array object header. Layout is fixed and known to the JIT:
///   offset 0: u64 length (elements)
///   offset 8: u64 element kind (0 = byte, 1 = int)
///   offset 16: payload
struct ArrayObject {
  uint64_t length;
  uint64_t kind;  // 0 = byte, 1 = int

  static constexpr uint64_t kByteKind = 0;
  static constexpr uint64_t kIntKind = 1;
  static constexpr size_t kLengthOffset = 0;
  static constexpr size_t kKindOffset = 8;
  static constexpr size_t kDataOffset = 16;

  uint8_t* bytes() { return reinterpret_cast<uint8_t*>(this) + kDataOffset; }
  const uint8_t* bytes() const {
    return reinterpret_cast<const uint8_t*>(this) + kDataOffset;
  }
  int64_t* ints() { return reinterpret_cast<int64_t*>(bytes()); }
  const int64_t* ints() const {
    return reinterpret_cast<const int64_t*>(bytes());
  }
};

static_assert(sizeof(ArrayObject) == ArrayObject::kDataOffset,
              "JIT-visible layout");

/// Per-invocation allocation pool with quota accounting.
class VmHeap {
 public:
  /// \param quota_bytes maximum payload+header bytes (0 = unlimited).
  explicit VmHeap(size_t quota_bytes = 0) : quota_(quota_bytes) {}
  ~VmHeap() { Reset(); }

  VmHeap(const VmHeap&) = delete;
  VmHeap& operator=(const VmHeap&) = delete;

  /// Allocates a zeroed byte array of `len` elements.
  Result<ArrayObject*> NewByteArray(uint64_t len) {
    return Allocate(len, ArrayObject::kByteKind, len);
  }
  /// Allocates a zeroed int array of `len` elements.
  Result<ArrayObject*> NewIntArray(uint64_t len) {
    return Allocate(len, ArrayObject::kIntKind, len * 8);
  }
  /// Allocates a byte array initialized from `data` (the copy across the
  /// embedding boundary — the paper's marshalling cost).
  Result<ArrayObject*> NewByteArrayFrom(Slice data) {
    JAGUAR_ASSIGN_OR_RETURN(ArrayObject* arr, NewByteArray(data.size()));
    if (!data.empty()) std::memcpy(arr->bytes(), data.data(), data.size());
    return arr;
  }

  /// Frees every object allocated since the last Reset.
  void Reset();

  size_t bytes_allocated() const { return bytes_allocated_; }
  size_t quota() const { return quota_; }
  size_t object_count() const { return objects_.size(); }
  void set_quota(size_t quota_bytes) { quota_ = quota_bytes; }

 private:
  Result<ArrayObject*> Allocate(uint64_t len, uint64_t kind,
                                uint64_t payload_bytes);

  size_t quota_;
  size_t bytes_allocated_ = 0;
  std::vector<ArrayObject*> objects_;
};

}  // namespace jvm
}  // namespace jaguar

#endif  // JAGUAR_JVM_HEAP_H_
