#ifndef JAGUAR_JVM_BYTECODE_H_
#define JAGUAR_JVM_BYTECODE_H_

/// \file bytecode.h
/// The JagVM instruction set: a verified, stack-based bytecode in the mold of
/// JVM bytecode, scoped to what database UDFs need — 64-bit integer
/// arithmetic, byte/int arrays with **mandatory bounds checks**, static
/// method calls, and security-checked native calls (the UDF↔server callback
/// boundary).
///
/// Design notes mirroring the paper's Java properties:
///  * The bytecode is *typed*: a load-time verifier (verifier.h) proves stack
///    and local-variable type safety, so the interpreter and JIT run without
///    runtime type tags.
///  * Array accesses are bounds-checked at runtime — this is the cost the
///    paper measures in Figure 7.
///  * References are always initialized (the verifier rejects reads of
///    uninitialized locals and there is no null literal), so no null checks
///    are needed; bounds checks remain the only per-access cost.
///  * Branch operands are absolute byte offsets into the method's code and
///    must land on instruction boundaries (verified).

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace jaguar {
namespace jvm {

enum class Op : uint8_t {
  kNop = 0x00,
  kIConst = 0x01,   ///< imm: i64 constant to push.
  kILoad = 0x02,    ///< a: local slot (int).
  kIStore = 0x03,   ///< a: local slot (int).
  kALoad = 0x04,    ///< a: local slot (reference).
  kAStore = 0x05,   ///< a: local slot (reference).

  kIAdd = 0x10,
  kISub = 0x11,
  kIMul = 0x12,
  kIDiv = 0x13,     ///< Traps on division by zero.
  kIRem = 0x14,     ///< Traps on modulo by zero.
  kINeg = 0x15,
  kIAnd = 0x16,
  kIOr = 0x17,
  kIXor = 0x18,
  kIShl = 0x19,     ///< Shift count masked to 63.
  kIShr = 0x1A,     ///< Arithmetic shift; count masked to 63.
  kIUShr = 0x1B,    ///< Logical shift; count masked to 63.

  kIfICmpEq = 0x20,  ///< a: target. Pops b, a; jumps when a == b.
  kIfICmpNe = 0x21,
  kIfICmpLt = 0x22,
  kIfICmpLe = 0x23,
  kIfICmpGt = 0x24,
  kIfICmpGe = 0x25,
  kIfEq = 0x26,      ///< a: target. Pops v; jumps when v == 0.
  kIfNe = 0x27,
  kGoto = 0x28,      ///< a: target.

  kBALoad = 0x30,    ///< arr, idx -> int (byte zero-extended). Bounds-checked.
  kBAStore = 0x31,   ///< arr, idx, val -> (stores low 8 bits). Bounds-checked.
  kIALoad = 0x32,    ///< int-array load. Bounds-checked.
  kIAStore = 0x33,   ///< int-array store. Bounds-checked.
  kArrayLen = 0x34,  ///< arr -> int.
  kNewBArray = 0x35, ///< len -> byte[]. Charged against the heap quota.
  kNewIArray = 0x36, ///< len -> int[]. Charged against the heap quota.

  kCall = 0x40,        ///< a: constant-pool MethodRef index.
  kCallNative = 0x41,  ///< a: constant-pool NativeRef index. Security-checked.

  kIReturn = 0x50,
  kAReturn = 0x51,
  kReturn = 0x52,

  kDup = 0x60,
  kPop = 0x61,
  kSwap = 0x62,
};

/// \return Mnemonic for an opcode ("iadd", "if_icmpeq", ...).
const char* OpToString(Op op);

/// Value/slot types as tracked by the verifier and encoded in signatures.
enum class VType : uint8_t {
  kInt = 0,        ///< 'I' — 64-bit integer.
  kByteArray = 1,  ///< 'B' — reference to byte[].
  kIntArray = 2,   ///< 'A' — reference to int[].
};

/// \return Signature character for a type.
char VTypeToChar(VType t);
Result<VType> VTypeFromChar(char c);
const char* VTypeToString(VType t);

/// A parsed method signature: "(IBA)I" style. Return may also be 'V' (void).
struct Signature {
  std::vector<VType> params;
  bool returns_void = false;
  VType return_type = VType::kInt;  ///< Valid when !returns_void.

  /// Parses "(<params>)<ret>".
  static Result<Signature> Parse(const std::string& text);
  std::string ToString() const;
  bool operator==(const Signature& o) const;
};

/// One decoded instruction. `imm` is used by kIConst; `a` holds the local
/// slot, constant-pool index, or branch target (byte offset before
/// retargeting, instruction index after).
struct Instr {
  Op op;
  int64_t imm = 0;
  uint32_t a = 0;
  /// Byte offset of this instruction in the original code (for diagnostics).
  uint32_t offset = 0;
};

/// \return true if `op` takes a branch-target operand.
bool IsBranch(Op op);
/// \return true if `op` unconditionally ends a basic block (goto/returns).
bool IsBlockEnd(Op op);

/// Encodes instructions to code bytes. Branch targets in `a` are byte
/// offsets; the caller (assembler/compiler) is responsible for fixing them up.
class CodeWriter {
 public:
  /// Appends an instruction; returns its byte offset.
  uint32_t Emit(Op op);
  uint32_t EmitImm(Op op, int64_t imm);     ///< kIConst.
  uint32_t EmitA(Op op, uint32_t a);        ///< Ops with a u32 operand.

  /// Overwrites the 4-byte operand of the instruction at `instr_offset`.
  void PatchA(uint32_t instr_offset, uint32_t a);

  uint32_t size() const { return static_cast<uint32_t>(code_.size()); }
  const std::vector<uint8_t>& code() const { return code_; }
  std::vector<uint8_t> Release() { return std::move(code_); }

 private:
  std::vector<uint8_t> code_;
};

/// Decodes code bytes into an instruction vector. Fails (VerificationError)
/// on unknown opcodes or truncated operands. Branch targets remain byte
/// offsets; `RetargetBranches` converts them to instruction indices.
Result<std::vector<Instr>> DecodeCode(const std::vector<uint8_t>& code);

/// Converts branch byte-offsets to instruction indices; fails if a target is
/// not an instruction boundary.
Status RetargetBranches(std::vector<Instr>* instrs);

/// Human-readable disassembly (one instruction per line).
std::string Disassemble(const std::vector<Instr>& instrs);

}  // namespace jvm
}  // namespace jaguar

#endif  // JAGUAR_JVM_BYTECODE_H_
