#ifndef JAGUAR_JVM_VERIFIER_H_
#define JAGUAR_JVM_VERIFIER_H_

/// \file verifier.h
/// Load-time bytecode verification — JagVM's analogue of the Java bytecode
/// verifier (Section 6.1 of the paper). Verification proves, before a single
/// instruction runs, that:
///
///   * every opcode and operand is well-formed, and branches land on
///     instruction boundaries;
///   * the operand stack never underflows and its depth never exceeds the
///     computed max_stack (which must be within the declared bound);
///   * every value is used at its static type: integers as integers,
///     byte[] as byte[], int[] as int[] — no forging references from ints;
///   * locals are written before they are read (so references are always
///     initialized and the runtime needs no null checks);
///   * calls match the referenced method signatures, and returns match the
///     method's own signature;
///   * execution cannot fall off the end of the code.
///
/// What verification deliberately does NOT bound is *resource usage*: a
/// verified method can still loop forever or allocate aggressively. That is
/// the runtime resource manager's job (Section 6.2) — the same division of
/// labor the paper describes for the JVM.

#include <string>
#include <vector>

#include "common/status.h"
#include "jvm/bytecode.h"
#include "jvm/class_file.h"

namespace jaguar {
namespace jvm {

/// Hard structural limits applied during verification (defense in depth
/// against pathological uploads).
inline constexpr uint16_t kMaxLocals = 256;
inline constexpr uint16_t kMaxStackLimit = 1024;
inline constexpr size_t kMaxCodeBytes = 1 << 20;
inline constexpr size_t kMaxMethodsPerClass = 1024;

/// A verified method: decoded instructions with branch targets converted to
/// instruction indices, plus the verifier-computed stack bound.
struct VerifiedMethod {
  std::string name;
  Signature sig;
  uint16_t max_locals = 0;
  uint16_t max_stack = 0;  ///< Computed by the verifier.
  std::vector<Instr> code;
};

/// A verified class: safe to link and execute. Keeps the original class file
/// for constant-pool resolution (method refs, native refs).
struct VerifiedClass {
  std::string name;
  std::vector<VerifiedMethod> methods;
  ClassFile cf;

  Result<const VerifiedMethod*> FindMethod(const std::string& name) const;
};

/// Verifies all methods of `cf`. Any violation yields VerificationError with
/// method name and instruction index in the message.
Result<VerifiedClass> Verify(const ClassFile& cf);

}  // namespace jvm
}  // namespace jaguar

#endif  // JAGUAR_JVM_VERIFIER_H_
