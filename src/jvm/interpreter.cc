#include "jvm/interpreter.h"

#include "common/string_util.h"
#include "obs/metrics.h"

namespace jaguar {
namespace jvm {

namespace {

inline ArrayObject* AsRef(int64_t slot) {
  return reinterpret_cast<ArrayObject*>(slot);
}
inline int64_t FromRef(ArrayObject* obj) {
  return reinterpret_cast<int64_t>(obj);
}

Status BoundsError(int64_t idx, uint64_t len) {
  return RuntimeError(StringPrintf(
      "array index %lld out of bounds for length %llu",
      static_cast<long long>(idx), static_cast<unsigned long long>(len)));
}

}  // namespace

Result<int64_t> Interpret(ExecContext* ctx, const LoadedClass& cls,
                          const VerifiedMethod& method, const int64_t* args) {
  JAGUAR_RETURN_IF_ERROR(ctx->EnterCall());
  struct CallGuard {
    ExecContext* ctx;
    ~CallGuard() { ctx->LeaveCall(); }
  } guard{ctx};

  // Verified bounds: max_locals <= kMaxLocals, max_stack <= kMaxStackLimit.
  int64_t locals[kMaxLocals];
  int64_t stack[kMaxStackLimit];
  const size_t nparams = method.sig.params.size();
  for (size_t i = 0; i < nparams; ++i) locals[i] = args[i];

  const Instr* code = method.code.data();
  int64_t* budget = ctx->budget_ptr();
  size_t sp = 0;  // next free slot
  uint32_t pc = 0;

  // Count retired bytecodes locally and flush once per Interpret call on any
  // exit path — one atomic add instead of one per instruction.
  uint64_t ops = 0;
  struct OpsFlush {
    const uint64_t* ops;
    ~OpsFlush() {
      static obs::Counter* bytecodes =
          obs::MetricsRegistry::Global()->GetCounter("jvm.interp.bytecodes");
      bytecodes->Add(*ops);
    }
  } flush{&ops};

  while (true) {
    const Instr& ins = code[pc];
    ++ops;
    if (--*budget < 0) {
      // With a deadline armed, the budget may be the deadline-derived probe
      // cap rather than a configured quota — attribute accordingly.
      const QueryDeadline* dl = ctx->deadline();
      if (dl != nullptr && (ctx->deadline_budget() || dl->Expired())) {
        return DeadlineExceeded("query exceeded its deadline of " +
                                std::to_string(dl->timeout_ms()) + " ms");
      }
      return ResourceExhausted("UDF exceeded its instruction budget");
    }
    // Poll the wall-clock deadline every 64Ki bytecodes: cheap enough to be
    // free, frequent enough to stop an interpreted busy-loop within
    // a millisecond of expiry.
    if ((ops & 0xFFFF) == 0) {
      if (const QueryDeadline* dl = ctx->deadline()) {
        JAGUAR_RETURN_IF_ERROR(dl->Check());
      }
    }
    switch (ins.op) {
      case Op::kNop:
        break;
      case Op::kIConst:
        stack[sp++] = ins.imm;
        break;
      case Op::kILoad:
      case Op::kALoad:
        stack[sp++] = locals[ins.a];
        break;
      case Op::kIStore:
      case Op::kAStore:
        locals[ins.a] = stack[--sp];
        break;
      // Arithmetic wraps on overflow (two's complement), computed in the
      // unsigned domain so the wrap is defined behavior — and so the
      // interpreter matches the JIT's machine semantics exactly.
      case Op::kIAdd:
        stack[sp - 2] = static_cast<int64_t>(
            static_cast<uint64_t>(stack[sp - 2]) +
            static_cast<uint64_t>(stack[sp - 1]));
        --sp;
        break;
      case Op::kISub:
        stack[sp - 2] = static_cast<int64_t>(
            static_cast<uint64_t>(stack[sp - 2]) -
            static_cast<uint64_t>(stack[sp - 1]));
        --sp;
        break;
      case Op::kIMul:
        stack[sp - 2] = static_cast<int64_t>(
            static_cast<uint64_t>(stack[sp - 2]) *
            static_cast<uint64_t>(stack[sp - 1]));
        --sp;
        break;
      case Op::kIDiv: {
        int64_t b = stack[--sp];
        if (b == 0) return RuntimeError("division by zero");
        // INT64_MIN / -1 overflows; define it as INT64_MIN (wraps). The
        // negation happens in the unsigned domain to avoid signed-overflow
        // UB on exactly that input.
        if (b == -1) {
          stack[sp - 1] =
              static_cast<int64_t>(-static_cast<uint64_t>(stack[sp - 1]));
        } else {
          stack[sp - 1] /= b;
        }
        break;
      }
      case Op::kIRem: {
        int64_t b = stack[--sp];
        if (b == 0) return RuntimeError("modulo by zero");
        if (b == -1) {
          stack[sp - 1] = 0;
        } else {
          stack[sp - 1] %= b;
        }
        break;
      }
      case Op::kINeg:
        stack[sp - 1] =
            static_cast<int64_t>(-static_cast<uint64_t>(stack[sp - 1]));
        break;
      case Op::kIAnd:
        stack[sp - 2] &= stack[sp - 1];
        --sp;
        break;
      case Op::kIOr:
        stack[sp - 2] |= stack[sp - 1];
        --sp;
        break;
      case Op::kIXor:
        stack[sp - 2] ^= stack[sp - 1];
        --sp;
        break;
      case Op::kIShl:
        stack[sp - 2] = static_cast<int64_t>(
            static_cast<uint64_t>(stack[sp - 2]) << (stack[sp - 1] & 63));
        --sp;
        break;
      case Op::kIShr:
        stack[sp - 2] >>= (stack[sp - 1] & 63);
        --sp;
        break;
      case Op::kIUShr:
        stack[sp - 2] = static_cast<int64_t>(
            static_cast<uint64_t>(stack[sp - 2]) >> (stack[sp - 1] & 63));
        --sp;
        break;
      case Op::kIfICmpEq:
        sp -= 2;
        if (stack[sp] == stack[sp + 1]) { pc = ins.a; continue; }
        break;
      case Op::kIfICmpNe:
        sp -= 2;
        if (stack[sp] != stack[sp + 1]) { pc = ins.a; continue; }
        break;
      case Op::kIfICmpLt:
        sp -= 2;
        if (stack[sp] < stack[sp + 1]) { pc = ins.a; continue; }
        break;
      case Op::kIfICmpLe:
        sp -= 2;
        if (stack[sp] <= stack[sp + 1]) { pc = ins.a; continue; }
        break;
      case Op::kIfICmpGt:
        sp -= 2;
        if (stack[sp] > stack[sp + 1]) { pc = ins.a; continue; }
        break;
      case Op::kIfICmpGe:
        sp -= 2;
        if (stack[sp] >= stack[sp + 1]) { pc = ins.a; continue; }
        break;
      case Op::kIfEq:
        if (stack[--sp] == 0) { pc = ins.a; continue; }
        break;
      case Op::kIfNe:
        if (stack[--sp] != 0) { pc = ins.a; continue; }
        break;
      case Op::kGoto:
        pc = ins.a;
        continue;
      case Op::kBALoad: {
        int64_t idx = stack[--sp];
        ArrayObject* arr = AsRef(stack[sp - 1]);
        if (static_cast<uint64_t>(idx) >= arr->length) {
          return BoundsError(idx, arr->length);
        }
        stack[sp - 1] = arr->bytes()[idx];
        break;
      }
      case Op::kBAStore: {
        int64_t val = stack[--sp];
        int64_t idx = stack[--sp];
        ArrayObject* arr = AsRef(stack[--sp]);
        if (static_cast<uint64_t>(idx) >= arr->length) {
          return BoundsError(idx, arr->length);
        }
        arr->bytes()[idx] = static_cast<uint8_t>(val);
        break;
      }
      case Op::kIALoad: {
        int64_t idx = stack[--sp];
        ArrayObject* arr = AsRef(stack[sp - 1]);
        if (static_cast<uint64_t>(idx) >= arr->length) {
          return BoundsError(idx, arr->length);
        }
        stack[sp - 1] = arr->ints()[idx];
        break;
      }
      case Op::kIAStore: {
        int64_t val = stack[--sp];
        int64_t idx = stack[--sp];
        ArrayObject* arr = AsRef(stack[--sp]);
        if (static_cast<uint64_t>(idx) >= arr->length) {
          return BoundsError(idx, arr->length);
        }
        arr->ints()[idx] = val;
        break;
      }
      case Op::kArrayLen:
        stack[sp - 1] = static_cast<int64_t>(AsRef(stack[sp - 1])->length);
        break;
      case Op::kNewBArray: {
        int64_t len = stack[--sp];
        if (len < 0) return RuntimeError("negative array size");
        JAGUAR_ASSIGN_OR_RETURN(ArrayObject* arr,
                                ctx->heap().NewByteArray(len));
        stack[sp++] = FromRef(arr);
        break;
      }
      case Op::kNewIArray: {
        int64_t len = stack[--sp];
        if (len < 0) return RuntimeError("negative array size");
        JAGUAR_ASSIGN_OR_RETURN(ArrayObject* arr, ctx->heap().NewIntArray(len));
        stack[sp++] = FromRef(arr);
        break;
      }
      case Op::kCall: {
        JAGUAR_ASSIGN_OR_RETURN(LoadedClass::ResolvedMethod target,
                                ResolveCall(cls, ins.a));
        const size_t nargs = target.method->sig.params.size();
        sp -= nargs;
        JAGUAR_ASSIGN_OR_RETURN(
            int64_t ret,
            ctx->CallResolved(*target.target_class, *target.method,
                              stack + sp));
        if (!target.method->sig.returns_void) stack[sp++] = ret;
        break;
      }
      case Op::kCallNative: {
        JAGUAR_ASSIGN_OR_RETURN(const NativeMethod* native,
                                ResolveNative(ctx->vm(), cls, ins.a));
        const size_t nargs = native->sig.params.size();
        sp -= nargs;
        JAGUAR_ASSIGN_OR_RETURN(int64_t ret,
                                InvokeNative(ctx, *native, stack + sp));
        if (!native->sig.returns_void) stack[sp++] = ret;
        break;
      }
      case Op::kIReturn:
      case Op::kAReturn:
        return stack[sp - 1];
      case Op::kReturn:
        return 0;
      case Op::kDup:
        stack[sp] = stack[sp - 1];
        ++sp;
        break;
      case Op::kPop:
        --sp;
        break;
      case Op::kSwap:
        std::swap(stack[sp - 1], stack[sp - 2]);
        break;
    }
    ++pc;
  }
}

}  // namespace jvm
}  // namespace jaguar
