#ifndef JAGUAR_JVM_X64_ASSEMBLER_H_
#define JAGUAR_JVM_X64_ASSEMBLER_H_

/// \file x64_assembler.h
/// A minimal x86-64 instruction encoder for the JagVM baseline JIT, plus
/// executable-memory management. Only the instructions the JIT emits are
/// supported; encodings follow the Intel SDM (REX/ModRM/SIB).
///
/// Labels provide forward references: `Jcc(cond, label)` records a rel32
/// fixup patched at `Bind(label)` time.

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace jaguar {
namespace jvm {

/// x86-64 general-purpose registers (encoding values).
enum class Reg : uint8_t {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

/// Condition codes (the `cc` in Jcc/SETcc encodings).
enum class Cond : uint8_t {
  kO = 0x0, kNo = 0x1, kB = 0x2, kAe = 0x3, kE = 0x4, kNe = 0x5,
  kBe = 0x6, kA = 0x7, kS = 0x8, kNs = 0x9,
  kL = 0xC, kGe = 0xD, kLe = 0xE, kG = 0xF,
};

class X64Assembler {
 public:
  using LabelId = uint32_t;

  LabelId NewLabel();
  void Bind(LabelId label);

  /// Pads with multi-byte NOPs to the given power-of-two boundary (loop-head
  /// alignment).
  void AlignTo(size_t boundary);

  // -- Moves ---------------------------------------------------------------
  void MovRegImm64(Reg dst, int64_t imm);
  void MovRegReg(Reg dst, Reg src);
  void MovRegMem(Reg dst, Reg base, int32_t disp);          ///< dst = [base+disp]
  void MovMemReg(Reg base, int32_t disp, Reg src);          ///< [base+disp] = src
  /// dst = zero-extended byte at [base + index*1 + disp].
  void MovzxRegByte(Reg dst, Reg base, Reg index, int32_t disp);
  /// byte [base + index*1 + disp] = low 8 bits of src.
  void MovByteMemReg(Reg base, Reg index, int32_t disp, Reg src);
  /// dst = qword [base + index*8 + disp].
  void MovRegMemIndex8(Reg dst, Reg base, Reg index, int32_t disp);
  /// qword [base + index*8 + disp] = src.
  void MovMemIndex8Reg(Reg base, Reg index, int32_t disp, Reg src);
  void LeaRegMem(Reg dst, Reg base, int32_t disp);

  // -- ALU -----------------------------------------------------------------
  void AddRegReg(Reg dst, Reg src);
  void SubRegReg(Reg dst, Reg src);
  void AndRegReg(Reg dst, Reg src);
  void OrRegReg(Reg dst, Reg src);
  void XorRegReg(Reg dst, Reg src);
  void ImulRegReg(Reg dst, Reg src);
  void NegReg(Reg r);
  void AddRegImm32(Reg dst, int32_t imm);
  void SubRegImm32(Reg dst, int32_t imm);
  void AndRegImm32(Reg dst, int32_t imm);
  void OrRegImm32(Reg dst, int32_t imm);
  void XorRegImm32(Reg dst, int32_t imm);
  /// qword [base+disp] -= imm (sets flags).
  void SubMemImm32(Reg base, int32_t disp, int32_t imm);
  void CmpRegReg(Reg a, Reg b);
  void CmpRegImm32(Reg a, int32_t imm);
  /// cmp a, qword [base+disp].
  void CmpRegMem(Reg a, Reg base, int32_t disp);
  /// cmp qword [base+disp], imm.
  void CmpMemImm32(Reg base, int32_t disp, int32_t imm);
  void TestRegReg(Reg a, Reg b);
  void Cqo();            ///< Sign-extend RAX into RDX:RAX.
  void IdivReg(Reg r);   ///< RAX = RDX:RAX / r; RDX = remainder.
  void ShlRegCl(Reg r);
  void SarRegCl(Reg r);
  void ShrRegCl(Reg r);

  // -- Control flow ----------------------------------------------------------
  void Jmp(LabelId label);
  void Jcc(Cond cond, LabelId label);
  void CallReg(Reg r);
  void PushReg(Reg r);
  void PopReg(Reg r);
  void Ret();

  /// \return Finalized code bytes. All labels must be bound.
  Result<std::vector<uint8_t>> Finalize();

  size_t size() const { return code_.size(); }

 private:
  void Emit8(uint8_t b) { code_.push_back(b); }
  void Emit32(uint32_t v);
  void Emit64(uint64_t v);
  /// REX prefix for a reg-reg operation (W=1).
  void Rex(Reg reg, Reg rm);
  void RexIndex(Reg reg, Reg index, Reg base, bool wide);
  /// ModRM with register-direct addressing.
  void ModRmReg(Reg reg, Reg rm);
  /// ModRM+SIB+disp for [base+disp] addressing.
  void ModRmMem(Reg reg, Reg base, int32_t disp);
  /// ModRM+SIB+disp for [base + index*scale + disp].
  void ModRmSib(Reg reg, Reg base, Reg index, uint8_t scale_log2,
                int32_t disp);

  struct Fixup {
    LabelId label;
    size_t offset;  // position of the rel32 field
  };

  std::vector<uint8_t> code_;
  std::vector<int64_t> label_pos_;  // -1 == unbound
  std::vector<Fixup> fixups_;
};

/// Page-aligned executable memory holding finalized code.
class ExecutableMemory {
 public:
  static Result<ExecutableMemory> Create(const std::vector<uint8_t>& code);
  ExecutableMemory() = default;
  ~ExecutableMemory();

  ExecutableMemory(ExecutableMemory&& o) noexcept { *this = std::move(o); }
  ExecutableMemory& operator=(ExecutableMemory&& o) noexcept;
  ExecutableMemory(const ExecutableMemory&) = delete;
  ExecutableMemory& operator=(const ExecutableMemory&) = delete;

  const void* entry() const { return mem_; }
  size_t size() const { return size_; }

 private:
  void* mem_ = nullptr;
  size_t size_ = 0;
};

}  // namespace jvm
}  // namespace jaguar

#endif  // JAGUAR_JVM_X64_ASSEMBLER_H_
