#ifndef JAGUAR_JVM_CLASS_FILE_H_
#define JAGUAR_JVM_CLASS_FILE_H_

/// \file class_file.h
/// The JagVM class-file format — the *portable* unit of UDF code, playing the
/// role of Java .class files in the paper: compiled once (by jjc or the
/// assembler), shipped between client and server as bytes, verified at load
/// time.
///
/// Binary layout (all integers little-endian):
///
///   magic "JAGC" | u16 version | u32 class_name (utf8 idx is not used for
///   the class name: it is a length-prefixed string) |
///   u16 cpool_count | cpool entries | u16 method_count | methods
///
///   cpool entry:  u8 kind
///     kind 0 Utf8:      length-prefixed string
///     kind 1 MethodRef: u16 class_utf8, u16 name_utf8, u16 sig_utf8
///     kind 2 NativeRef: u16 name_utf8, u16 sig_utf8
///
///   method: u16 name_utf8 | u16 sig_utf8 | u16 max_locals | u16 max_stack |
///           u32 code_len | code bytes
///
/// Parsing is fully bounds-checked (class files arrive from untrusted
/// clients); structural validation beyond shape — index ranges, signature
/// syntax, code well-formedness — is the verifier's job.

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "jvm/bytecode.h"

namespace jaguar {
namespace jvm {

inline constexpr uint32_t kClassMagic = 0x4341474A;  // "JAGC"
inline constexpr uint16_t kClassVersion = 1;

enum class ConstKind : uint8_t { kUtf8 = 0, kMethodRef = 1, kNativeRef = 2 };

struct ConstEntry {
  ConstKind kind = ConstKind::kUtf8;
  std::string utf8;        ///< kUtf8.
  uint16_t class_idx = 0;  ///< kMethodRef: utf8 index of the class name.
  uint16_t name_idx = 0;   ///< kMethodRef/kNativeRef.
  uint16_t sig_idx = 0;    ///< kMethodRef/kNativeRef.
};

struct MethodDef {
  uint16_t name_idx = 0;
  uint16_t sig_idx = 0;
  uint16_t max_locals = 0;
  uint16_t max_stack = 0;  ///< Declared; the verifier recomputes and checks.
  std::vector<uint8_t> code;
};

class ClassFile {
 public:
  std::string class_name;
  std::vector<ConstEntry> cpool;
  std::vector<MethodDef> methods;

  /// Adds a Utf8 entry (deduplicating) and returns its index.
  uint16_t InternUtf8(const std::string& s);
  /// Adds a MethodRef entry; the three arguments are interned automatically.
  uint16_t AddMethodRef(const std::string& cls, const std::string& name,
                        const std::string& sig);
  /// Adds a NativeRef entry.
  uint16_t AddNativeRef(const std::string& name, const std::string& sig);

  /// Bounds-checked constant-pool accessors.
  Result<const std::string*> GetUtf8(uint16_t idx) const;
  Result<const ConstEntry*> GetEntry(uint16_t idx, ConstKind kind) const;

  /// \return Index of the method named `name`, or NotFound.
  Result<size_t> FindMethod(const std::string& name) const;

  /// Method name/signature convenience (validated indices).
  Result<std::string> MethodName(const MethodDef& m) const;
  Result<Signature> MethodSignature(const MethodDef& m) const;

  std::vector<uint8_t> Serialize() const;
  static Result<ClassFile> Parse(Slice bytes);
};

}  // namespace jvm
}  // namespace jaguar

#endif  // JAGUAR_JVM_CLASS_FILE_H_
