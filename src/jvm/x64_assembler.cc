#include "jvm/x64_assembler.h"

#include <sys/mman.h>

#include <cstring>

#include "common/string_util.h"

namespace jaguar {
namespace jvm {

namespace {
inline uint8_t Low3(Reg r) { return static_cast<uint8_t>(r) & 7; }
inline bool Hi(Reg r) { return static_cast<uint8_t>(r) >= 8; }
}  // namespace

void X64Assembler::Emit32(uint32_t v) {
  for (int i = 0; i < 4; ++i) Emit8(static_cast<uint8_t>(v >> (8 * i)));
}
void X64Assembler::Emit64(uint64_t v) {
  for (int i = 0; i < 8; ++i) Emit8(static_cast<uint8_t>(v >> (8 * i)));
}

void X64Assembler::Rex(Reg reg, Reg rm) {
  Emit8(0x48 | (Hi(reg) ? 4 : 0) | (Hi(rm) ? 1 : 0));
}

void X64Assembler::RexIndex(Reg reg, Reg index, Reg base, bool wide) {
  uint8_t rex = 0x40 | (wide ? 8 : 0) | (Hi(reg) ? 4 : 0) |
                (Hi(index) ? 2 : 0) | (Hi(base) ? 1 : 0);
  Emit8(rex);
}

void X64Assembler::ModRmReg(Reg reg, Reg rm) {
  Emit8(0xC0 | (Low3(reg) << 3) | Low3(rm));
}

void X64Assembler::ModRmMem(Reg reg, Reg base, int32_t disp) {
  // mod=10 (disp32) always; RSP/R12 base needs a SIB byte.
  if (Low3(base) == 4) {
    Emit8(0x80 | (Low3(reg) << 3) | 4);
    Emit8(0x24);  // SIB: scale=0, index=none, base=rsp/r12
  } else {
    Emit8(0x80 | (Low3(reg) << 3) | Low3(base));
  }
  Emit32(static_cast<uint32_t>(disp));
}

void X64Assembler::ModRmSib(Reg reg, Reg base, Reg index, uint8_t scale_log2,
                            int32_t disp) {
  Emit8(0x80 | (Low3(reg) << 3) | 4);  // mod=10, rm=100 -> SIB
  Emit8(static_cast<uint8_t>((scale_log2 << 6) | (Low3(index) << 3) |
                             Low3(base)));
  Emit32(static_cast<uint32_t>(disp));
}

X64Assembler::LabelId X64Assembler::NewLabel() {
  label_pos_.push_back(-1);
  return static_cast<LabelId>(label_pos_.size() - 1);
}

void X64Assembler::Bind(LabelId label) {
  label_pos_[label] = static_cast<int64_t>(code_.size());
}

void X64Assembler::AlignTo(size_t boundary) {
  // Intel-recommended multi-byte NOP encodings, longest first.
  static const uint8_t kNops[][9] = {
      {0x90},
      {0x66, 0x90},
      {0x0F, 0x1F, 0x00},
      {0x0F, 0x1F, 0x40, 0x00},
      {0x0F, 0x1F, 0x44, 0x00, 0x00},
      {0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00},
      {0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00},
      {0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
      {0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
  };
  size_t pad = (boundary - (code_.size() & (boundary - 1))) & (boundary - 1);
  while (pad > 0) {
    size_t chunk = pad > 9 ? 9 : pad;
    for (size_t i = 0; i < chunk; ++i) Emit8(kNops[chunk - 1][i]);
    pad -= chunk;
  }
}

void X64Assembler::MovRegImm64(Reg dst, int64_t imm) {
  Emit8(0x48 | (Hi(dst) ? 1 : 0));
  Emit8(0xB8 | Low3(dst));
  Emit64(static_cast<uint64_t>(imm));
}

void X64Assembler::MovRegReg(Reg dst, Reg src) {
  Rex(src, dst);
  Emit8(0x89);
  ModRmReg(src, dst);
}

void X64Assembler::MovRegMem(Reg dst, Reg base, int32_t disp) {
  Rex(dst, base);
  Emit8(0x8B);
  ModRmMem(dst, base, disp);
}

void X64Assembler::MovMemReg(Reg base, int32_t disp, Reg src) {
  Rex(src, base);
  Emit8(0x89);
  ModRmMem(src, base, disp);
}

void X64Assembler::MovzxRegByte(Reg dst, Reg base, Reg index, int32_t disp) {
  RexIndex(dst, index, base, /*wide=*/true);
  Emit8(0x0F);
  Emit8(0xB6);
  ModRmSib(dst, base, index, 0, disp);
}

void X64Assembler::MovByteMemReg(Reg base, Reg index, int32_t disp, Reg src) {
  // REX (even 0x40) selects SIL/DIL-style low bytes for RSI/RDI.
  RexIndex(src, index, base, /*wide=*/false);
  Emit8(0x88);
  ModRmSib(src, base, index, 0, disp);
}

void X64Assembler::MovRegMemIndex8(Reg dst, Reg base, Reg index,
                                   int32_t disp) {
  RexIndex(dst, index, base, /*wide=*/true);
  Emit8(0x8B);
  ModRmSib(dst, base, index, 3, disp);
}

void X64Assembler::MovMemIndex8Reg(Reg base, Reg index, int32_t disp,
                                   Reg src) {
  RexIndex(src, index, base, /*wide=*/true);
  Emit8(0x89);
  ModRmSib(src, base, index, 3, disp);
}

void X64Assembler::LeaRegMem(Reg dst, Reg base, int32_t disp) {
  Rex(dst, base);
  Emit8(0x8D);
  ModRmMem(dst, base, disp);
}

void X64Assembler::AddRegReg(Reg dst, Reg src) {
  Rex(src, dst);
  Emit8(0x01);
  ModRmReg(src, dst);
}
void X64Assembler::SubRegReg(Reg dst, Reg src) {
  Rex(src, dst);
  Emit8(0x29);
  ModRmReg(src, dst);
}
void X64Assembler::AndRegReg(Reg dst, Reg src) {
  Rex(src, dst);
  Emit8(0x21);
  ModRmReg(src, dst);
}
void X64Assembler::OrRegReg(Reg dst, Reg src) {
  Rex(src, dst);
  Emit8(0x09);
  ModRmReg(src, dst);
}
void X64Assembler::XorRegReg(Reg dst, Reg src) {
  Rex(src, dst);
  Emit8(0x31);
  ModRmReg(src, dst);
}
void X64Assembler::ImulRegReg(Reg dst, Reg src) {
  Rex(dst, src);
  Emit8(0x0F);
  Emit8(0xAF);
  ModRmReg(dst, src);
}
void X64Assembler::NegReg(Reg r) {
  Rex(Reg::RAX, r);
  Emit8(0xF7);
  Emit8(0xD8 | Low3(r));
}
void X64Assembler::AddRegImm32(Reg dst, int32_t imm) {
  Rex(Reg::RAX, dst);
  Emit8(0x81);
  Emit8(0xC0 | Low3(dst));
  Emit32(static_cast<uint32_t>(imm));
}
void X64Assembler::SubRegImm32(Reg dst, int32_t imm) {
  Rex(Reg::RAX, dst);
  Emit8(0x81);
  Emit8(0xE8 | Low3(dst));
  Emit32(static_cast<uint32_t>(imm));
}
void X64Assembler::AndRegImm32(Reg dst, int32_t imm) {
  Rex(Reg::RAX, dst);
  Emit8(0x81);
  Emit8(0xE0 | Low3(dst));  // /4
  Emit32(static_cast<uint32_t>(imm));
}
void X64Assembler::OrRegImm32(Reg dst, int32_t imm) {
  Rex(Reg::RAX, dst);
  Emit8(0x81);
  Emit8(0xC8 | Low3(dst));  // /1
  Emit32(static_cast<uint32_t>(imm));
}
void X64Assembler::XorRegImm32(Reg dst, int32_t imm) {
  Rex(Reg::RAX, dst);
  Emit8(0x81);
  Emit8(0xF0 | Low3(dst));  // /6
  Emit32(static_cast<uint32_t>(imm));
}
void X64Assembler::SubMemImm32(Reg base, int32_t disp, int32_t imm) {
  Rex(Reg::RAX, base);
  Emit8(0x81);
  ModRmMem(static_cast<Reg>(5), base, disp);  // /5 = sub
  Emit32(static_cast<uint32_t>(imm));
}
void X64Assembler::CmpRegReg(Reg a, Reg b) {
  Rex(b, a);
  Emit8(0x39);
  ModRmReg(b, a);
}
void X64Assembler::CmpRegImm32(Reg a, int32_t imm) {
  Rex(Reg::RAX, a);
  Emit8(0x81);
  Emit8(0xF8 | Low3(a));
  Emit32(static_cast<uint32_t>(imm));
}
void X64Assembler::CmpRegMem(Reg a, Reg base, int32_t disp) {
  Rex(a, base);
  Emit8(0x3B);
  ModRmMem(a, base, disp);
}
void X64Assembler::CmpMemImm32(Reg base, int32_t disp, int32_t imm) {
  Rex(Reg::RAX, base);
  Emit8(0x81);
  ModRmMem(static_cast<Reg>(7), base, disp);  // /7 = cmp
  Emit32(static_cast<uint32_t>(imm));
}
void X64Assembler::TestRegReg(Reg a, Reg b) {
  Rex(b, a);
  Emit8(0x85);
  ModRmReg(b, a);
}
void X64Assembler::Cqo() {
  Emit8(0x48);
  Emit8(0x99);
}
void X64Assembler::IdivReg(Reg r) {
  Rex(Reg::RAX, r);
  Emit8(0xF7);
  Emit8(0xF8 | Low3(r));
}
void X64Assembler::ShlRegCl(Reg r) {
  Rex(Reg::RAX, r);
  Emit8(0xD3);
  Emit8(0xE0 | Low3(r));
}
void X64Assembler::SarRegCl(Reg r) {
  Rex(Reg::RAX, r);
  Emit8(0xD3);
  Emit8(0xF8 | Low3(r));
}
void X64Assembler::ShrRegCl(Reg r) {
  Rex(Reg::RAX, r);
  Emit8(0xD3);
  Emit8(0xE8 | Low3(r));
}

void X64Assembler::Jmp(LabelId label) {
  Emit8(0xE9);
  fixups_.push_back({label, code_.size()});
  Emit32(0);
}

void X64Assembler::Jcc(Cond cond, LabelId label) {
  Emit8(0x0F);
  Emit8(0x80 | static_cast<uint8_t>(cond));
  fixups_.push_back({label, code_.size()});
  Emit32(0);
}

void X64Assembler::CallReg(Reg r) {
  if (Hi(r)) Emit8(0x41);
  Emit8(0xFF);
  Emit8(0xD0 | Low3(r));
}

void X64Assembler::PushReg(Reg r) {
  if (Hi(r)) Emit8(0x41);
  Emit8(0x50 | Low3(r));
}

void X64Assembler::PopReg(Reg r) {
  if (Hi(r)) Emit8(0x41);
  Emit8(0x58 | Low3(r));
}

void X64Assembler::Ret() { Emit8(0xC3); }

Result<std::vector<uint8_t>> X64Assembler::Finalize() {
  for (const Fixup& fix : fixups_) {
    int64_t target = label_pos_[fix.label];
    if (target < 0) return Internal("unbound JIT label");
    int64_t rel = target - static_cast<int64_t>(fix.offset) - 4;
    if (rel < INT32_MIN || rel > INT32_MAX) {
      return Internal("JIT branch out of rel32 range");
    }
    uint32_t v = static_cast<uint32_t>(static_cast<int32_t>(rel));
    for (int i = 0; i < 4; ++i) {
      code_[fix.offset + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  }
  return code_;
}

ExecutableMemory::~ExecutableMemory() {
  if (mem_ != nullptr) ::munmap(mem_, size_);
}

ExecutableMemory& ExecutableMemory::operator=(ExecutableMemory&& o) noexcept {
  if (this != &o) {
    if (mem_ != nullptr) ::munmap(mem_, size_);
    mem_ = o.mem_;
    size_ = o.size_;
    o.mem_ = nullptr;
    o.size_ = 0;
  }
  return *this;
}

Result<ExecutableMemory> ExecutableMemory::Create(
    const std::vector<uint8_t>& code) {
  if (code.empty()) return InvalidArgument("empty code");
  size_t size = (code.size() + 4095) & ~size_t{4095};
  void* mem = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return IoError("mmap failed for JIT code");
  std::memcpy(mem, code.data(), code.size());
  if (::mprotect(mem, size, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(mem, size);
    return IoError("mprotect failed for JIT code");
  }
  ExecutableMemory out;
  out.mem_ = mem;
  out.size_ = size;
  return out;
}

}  // namespace jvm
}  // namespace jaguar
