#ifndef JAGUAR_JVM_SECURITY_H_
#define JAGUAR_JVM_SECURITY_H_

/// \file security.h
/// JagVM's security manager and resource limits.
///
/// * `SecurityManager` mirrors the Java security manager of Section 6.1: it
///   is consulted *every time* a UDF attempts an action affecting its
///   environment — in JagVM, every `callnative` instruction. Policy is
///   default-deny with explicitly granted named permissions ("least
///   privilege", Saltzer & Schroeder, as cited by the paper).
///
/// * `ResourceLimits` supplies what the paper notes the 1998 JVMs *lacked*
///   (Section 6.2): per-invocation CPU (instruction budget), memory (heap
///   quota) and callback-count policing, in the spirit of Cornell's J-Kernel
///   work the paper points to.

#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace jaguar {
namespace jvm {

/// Security audit trail — the capability the paper points out 1998 Java
/// *lacked* (Section 6.1: "If the security restrictions are violated, there
/// [is] no mechanism to trace the responsible UDF classes"). Every
/// security-manager decision can be recorded with the principal (UDF name)
/// that triggered it, so operators can trace violations back to uploads.
///
/// Thread-safe: one server-wide log is written by every worker thread of a
/// parallel query, so the ring and counters sit behind a mutex (readers get
/// copies).
class AuditLog {
 public:
  struct Event {
    std::string principal;   ///< e.g. the UDF's registered name.
    std::string permission;
    bool granted;
  };

  /// \param max_events ring size; older events are dropped.
  explicit AuditLog(size_t max_events = 1024) : max_events_(max_events) {}

  void Record(const std::string& principal, const std::string& permission,
              bool granted) {
    std::lock_guard<std::mutex> lock(mutex_);
    granted ? ++grants_ : ++denials_;
    if (events_.size() >= max_events_) events_.pop_front();
    events_.push_back({principal, permission, granted});
  }

  uint64_t denials() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return denials_;
  }
  uint64_t grants() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return grants_;
  }
  std::deque<Event> events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

  /// \return Denial events for one principal (tracing a suspect UDF).
  std::vector<Event> DenialsFor(const std::string& principal) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Event> out;
    for (const Event& e : events_) {
      if (!e.granted && e.principal == principal) out.push_back(e);
    }
    return out;
  }

 private:
  mutable std::mutex mutex_;
  size_t max_events_;
  uint64_t denials_ = 0;
  uint64_t grants_ = 0;
  std::deque<Event> events_;
};

class SecurityManager {
 public:
  /// Default-deny policy.
  SecurityManager() = default;

  /// \return A manager that grants everything (trusted server-internal code).
  static SecurityManager AllowAll() {
    SecurityManager m;
    m.allow_all_ = true;
    return m;
  }

  void Grant(const std::string& permission) { granted_.insert(permission); }
  void Revoke(const std::string& permission) { granted_.erase(permission); }

  /// Attaches an audit trail; every Check() is recorded against `principal`.
  void SetAudit(AuditLog* audit, std::string principal) {
    audit_ = audit;
    principal_ = std::move(principal);
  }

  /// \return OK if `permission` is granted; SecurityViolation otherwise.
  /// Decisions are recorded in the attached audit log.
  Status Check(const std::string& permission) const {
    const bool granted = allow_all_ || granted_.count(permission) != 0;
    if (audit_ != nullptr) audit_->Record(principal_, permission, granted);
    if (granted) return Status::OK();
    return SecurityViolation("permission denied: " + permission +
                             (principal_.empty() ? "" :
                              " (principal: " + principal_ + ")"));
  }

  bool IsGranted(const std::string& permission) const {
    return allow_all_ || granted_.count(permission) != 0;
  }

  /// Number of Check() calls made (tests/benches observe the per-call cost).
  // (kept stateless on purpose; counting lives in ExecContext stats)

 private:
  bool allow_all_ = false;
  std::set<std::string> granted_;
  AuditLog* audit_ = nullptr;
  std::string principal_;
};

/// Per-invocation quotas. Zero means unlimited.
struct ResourceLimits {
  /// Maximum bytecode instructions retired (JIT charges per basic block).
  int64_t instruction_budget = 0;
  /// Maximum heap bytes allocated by the UDF.
  size_t heap_quota_bytes = 0;
  /// Maximum VM-level call depth (always enforced; default prevents
  /// runaway recursion from exhausting the C++ stack).
  uint32_t max_call_depth = 128;
};

}  // namespace jvm
}  // namespace jaguar

#endif  // JAGUAR_JVM_SECURITY_H_
