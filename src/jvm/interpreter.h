#ifndef JAGUAR_JVM_INTERPRETER_H_
#define JAGUAR_JVM_INTERPRETER_H_

/// \file interpreter.h
/// The bytecode interpreter: the always-available execution engine (and the
/// reference semantics the JIT is differentially tested against).
///
/// Because code is verified before it reaches the interpreter, the loop
/// performs no type checks — only the checks with runtime semantics: array
/// bounds, division by zero, the instruction budget, heap quota, call depth,
/// and the security manager on native calls.

#include "common/status.h"
#include "jvm/vm.h"

namespace jaguar {
namespace jvm {

/// Executes `method` with `args` (one slot per parameter). Returns the raw
/// result slot (undefined for void methods).
Result<int64_t> Interpret(ExecContext* ctx, const LoadedClass& cls,
                          const VerifiedMethod& method, const int64_t* args);

}  // namespace jvm
}  // namespace jaguar

#endif  // JAGUAR_JVM_INTERPRETER_H_
