#include "jvm/class_file.h"

#include "common/string_util.h"

namespace jaguar {
namespace jvm {

uint16_t ClassFile::InternUtf8(const std::string& s) {
  for (size_t i = 0; i < cpool.size(); ++i) {
    if (cpool[i].kind == ConstKind::kUtf8 && cpool[i].utf8 == s) {
      return static_cast<uint16_t>(i);
    }
  }
  ConstEntry e;
  e.kind = ConstKind::kUtf8;
  e.utf8 = s;
  cpool.push_back(std::move(e));
  return static_cast<uint16_t>(cpool.size() - 1);
}

uint16_t ClassFile::AddMethodRef(const std::string& cls,
                                 const std::string& name,
                                 const std::string& sig) {
  ConstEntry e;
  e.kind = ConstKind::kMethodRef;
  e.class_idx = InternUtf8(cls);
  e.name_idx = InternUtf8(name);
  e.sig_idx = InternUtf8(sig);
  cpool.push_back(e);
  return static_cast<uint16_t>(cpool.size() - 1);
}

uint16_t ClassFile::AddNativeRef(const std::string& name,
                                 const std::string& sig) {
  ConstEntry e;
  e.kind = ConstKind::kNativeRef;
  e.name_idx = InternUtf8(name);
  e.sig_idx = InternUtf8(sig);
  cpool.push_back(e);
  return static_cast<uint16_t>(cpool.size() - 1);
}

Result<const std::string*> ClassFile::GetUtf8(uint16_t idx) const {
  if (idx >= cpool.size() || cpool[idx].kind != ConstKind::kUtf8) {
    return VerificationError(StringPrintf("bad utf8 constant index %u", idx));
  }
  return &cpool[idx].utf8;
}

Result<const ConstEntry*> ClassFile::GetEntry(uint16_t idx,
                                              ConstKind kind) const {
  if (idx >= cpool.size() || cpool[idx].kind != kind) {
    return VerificationError(
        StringPrintf("bad constant index %u (kind %d)", idx,
                     static_cast<int>(kind)));
  }
  return &cpool[idx];
}

Result<size_t> ClassFile::FindMethod(const std::string& name) const {
  for (size_t i = 0; i < methods.size(); ++i) {
    Result<const std::string*> n = GetUtf8(methods[i].name_idx);
    if (n.ok() && **n == name) return i;
  }
  return NotFound("no method named '" + name + "' in class " + class_name);
}

Result<std::string> ClassFile::MethodName(const MethodDef& m) const {
  JAGUAR_ASSIGN_OR_RETURN(const std::string* n, GetUtf8(m.name_idx));
  return *n;
}

Result<Signature> ClassFile::MethodSignature(const MethodDef& m) const {
  JAGUAR_ASSIGN_OR_RETURN(const std::string* s, GetUtf8(m.sig_idx));
  return Signature::Parse(*s);
}

std::vector<uint8_t> ClassFile::Serialize() const {
  BufferWriter w;
  w.PutU32(kClassMagic);
  w.PutU16(kClassVersion);
  w.PutString(class_name);
  w.PutU16(static_cast<uint16_t>(cpool.size()));
  for (const ConstEntry& e : cpool) {
    w.PutU8(static_cast<uint8_t>(e.kind));
    switch (e.kind) {
      case ConstKind::kUtf8:
        w.PutString(e.utf8);
        break;
      case ConstKind::kMethodRef:
        w.PutU16(e.class_idx);
        w.PutU16(e.name_idx);
        w.PutU16(e.sig_idx);
        break;
      case ConstKind::kNativeRef:
        w.PutU16(e.name_idx);
        w.PutU16(e.sig_idx);
        break;
    }
  }
  w.PutU16(static_cast<uint16_t>(methods.size()));
  for (const MethodDef& m : methods) {
    w.PutU16(m.name_idx);
    w.PutU16(m.sig_idx);
    w.PutU16(m.max_locals);
    w.PutU16(m.max_stack);
    w.PutLengthPrefixed(Slice(m.code));
  }
  return w.Release();
}

Result<ClassFile> ClassFile::Parse(Slice bytes) {
  BufferReader r(bytes);
  ClassFile cf;
  JAGUAR_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kClassMagic) {
    return VerificationError("not a JagVM class file (bad magic)");
  }
  JAGUAR_ASSIGN_OR_RETURN(uint16_t version, r.ReadU16());
  if (version != kClassVersion) {
    return VerificationError(
        StringPrintf("unsupported class file version %u", version));
  }
  JAGUAR_ASSIGN_OR_RETURN(cf.class_name, r.ReadString());
  JAGUAR_ASSIGN_OR_RETURN(uint16_t cpool_count, r.ReadU16());
  cf.cpool.reserve(cpool_count);
  for (uint16_t i = 0; i < cpool_count; ++i) {
    JAGUAR_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
    ConstEntry e;
    switch (static_cast<ConstKind>(kind)) {
      case ConstKind::kUtf8: {
        e.kind = ConstKind::kUtf8;
        JAGUAR_ASSIGN_OR_RETURN(e.utf8, r.ReadString());
        break;
      }
      case ConstKind::kMethodRef: {
        e.kind = ConstKind::kMethodRef;
        JAGUAR_ASSIGN_OR_RETURN(e.class_idx, r.ReadU16());
        JAGUAR_ASSIGN_OR_RETURN(e.name_idx, r.ReadU16());
        JAGUAR_ASSIGN_OR_RETURN(e.sig_idx, r.ReadU16());
        break;
      }
      case ConstKind::kNativeRef: {
        e.kind = ConstKind::kNativeRef;
        JAGUAR_ASSIGN_OR_RETURN(e.name_idx, r.ReadU16());
        JAGUAR_ASSIGN_OR_RETURN(e.sig_idx, r.ReadU16());
        break;
      }
      default:
        return VerificationError(
            StringPrintf("bad constant kind %u", kind));
    }
    cf.cpool.push_back(std::move(e));
  }
  JAGUAR_ASSIGN_OR_RETURN(uint16_t method_count, r.ReadU16());
  cf.methods.reserve(method_count);
  for (uint16_t i = 0; i < method_count; ++i) {
    MethodDef m;
    JAGUAR_ASSIGN_OR_RETURN(m.name_idx, r.ReadU16());
    JAGUAR_ASSIGN_OR_RETURN(m.sig_idx, r.ReadU16());
    JAGUAR_ASSIGN_OR_RETURN(m.max_locals, r.ReadU16());
    JAGUAR_ASSIGN_OR_RETURN(m.max_stack, r.ReadU16());
    JAGUAR_ASSIGN_OR_RETURN(Slice code, r.ReadLengthPrefixed());
    m.code = code.ToVector();
    cf.methods.push_back(std::move(m));
  }
  if (!r.AtEnd()) {
    return VerificationError("trailing bytes after class file");
  }
  return cf;
}

}  // namespace jvm
}  // namespace jaguar
