#include "jvm/class_loader.h"

namespace jaguar {
namespace jvm {

Result<const LoadedClass*> ClassLoader::LoadClass(Slice class_file_bytes) {
  JAGUAR_ASSIGN_OR_RETURN(ClassFile cf, ClassFile::Parse(class_file_bytes));
  JAGUAR_ASSIGN_OR_RETURN(VerifiedClass verified, Verify(cf));
  return DefineClass(std::move(verified));
}

Result<const LoadedClass*> ClassLoader::DefineClass(VerifiedClass cls) {
  if (classes_.count(cls.name) != 0) {
    return AlreadyExists("class '" + cls.name +
                         "' already defined in this namespace");
  }
  auto loaded = std::make_unique<LoadedClass>();
  loaded->cls = std::move(cls);
  loaded->loader = this;
  const LoadedClass* ptr = loaded.get();
  classes_[ptr->cls.name] = std::move(loaded);
  return ptr;
}

Result<const LoadedClass*> ClassLoader::FindClass(
    const std::string& name) const {
  auto it = classes_.find(name);
  if (it != classes_.end()) return it->second.get();
  if (parent_ != nullptr) return parent_->FindClass(name);
  return NotFound("class '" + name + "' not found in this namespace");
}

std::vector<std::string> ClassLoader::ListClasses() const {
  std::vector<std::string> names;
  names.reserve(classes_.size());
  for (const auto& [name, cls] : classes_) names.push_back(name);
  return names;
}

}  // namespace jvm
}  // namespace jaguar
