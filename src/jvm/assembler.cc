#include "jvm/assembler.h"

#include <cstdlib>
#include <map>

#include "common/string_util.h"
#include "jvm/bytecode.h"

namespace jaguar {
namespace jvm {

namespace {

struct PendingBranch {
  uint32_t instr_offset;  // offset of the branch instruction in the code
  std::string label;
  int line;
};

Status LineError(int line, const std::string& msg) {
  return InvalidArgument(StringPrintf("line %d: %s", line, msg.c_str()));
}

/// Splits a line into whitespace-separated fields, dropping ';' comments.
std::vector<std::string> Fields(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ';') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

const std::map<std::string, Op>& SimpleOps() {
  static const auto* ops = new std::map<std::string, Op>{
      {"nop", Op::kNop},         {"iadd", Op::kIAdd},
      {"isub", Op::kISub},       {"imul", Op::kIMul},
      {"idiv", Op::kIDiv},       {"irem", Op::kIRem},
      {"ineg", Op::kINeg},       {"iand", Op::kIAnd},
      {"ior", Op::kIOr},         {"ixor", Op::kIXor},
      {"ishl", Op::kIShl},       {"ishr", Op::kIShr},
      {"iushr", Op::kIUShr},     {"baload", Op::kBALoad},
      {"bastore", Op::kBAStore}, {"iaload", Op::kIALoad},
      {"iastore", Op::kIAStore}, {"arraylen", Op::kArrayLen},
      {"newbarray", Op::kNewBArray}, {"newiarray", Op::kNewIArray},
      {"ireturn", Op::kIReturn}, {"areturn", Op::kAReturn},
      {"return", Op::kReturn},   {"dup", Op::kDup},
      {"pop", Op::kPop},         {"swap", Op::kSwap},
  };
  return *ops;
}

const std::map<std::string, Op>& LocalOps() {
  static const auto* ops = new std::map<std::string, Op>{
      {"iload", Op::kILoad},
      {"istore", Op::kIStore},
      {"aload", Op::kALoad},
      {"astore", Op::kAStore},
  };
  return *ops;
}

const std::map<std::string, Op>& BranchOps() {
  static const auto* ops = new std::map<std::string, Op>{
      {"if_icmpeq", Op::kIfICmpEq}, {"if_icmpne", Op::kIfICmpNe},
      {"if_icmplt", Op::kIfICmpLt}, {"if_icmple", Op::kIfICmpLe},
      {"if_icmpgt", Op::kIfICmpGt}, {"if_icmpge", Op::kIfICmpGe},
      {"ifeq", Op::kIfEq},          {"ifne", Op::kIfNe},
      {"goto", Op::kGoto},
  };
  return *ops;
}

}  // namespace

Result<ClassFile> Assemble(const std::string& source) {
  ClassFile cf;
  bool in_method = false;
  MethodDef method;
  CodeWriter code;
  std::map<std::string, uint32_t> labels;  // label -> byte offset
  std::vector<PendingBranch> pending;

  auto finish_method = [&](int line) -> Status {
    for (const PendingBranch& p : pending) {
      auto it = labels.find(p.label);
      if (it == labels.end()) {
        return LineError(p.line, "undefined label '" + p.label + "'");
      }
      code.PatchA(p.instr_offset, it->second);
    }
    method.code = code.Release();
    cf.methods.push_back(std::move(method));
    method = MethodDef{};
    code = CodeWriter{};
    labels.clear();
    pending.clear();
    in_method = false;
    return Status::OK();
  };

  int line_no = 0;
  for (const std::string& raw : Split(source, '\n')) {
    ++line_no;
    std::vector<std::string> f = Fields(raw);
    if (f.empty()) continue;

    if (f[0] == "class") {
      if (f.size() != 2) return LineError(line_no, "usage: class <Name>");
      cf.class_name = f[1];
      continue;
    }
    if (f[0] == "method") {
      if (in_method) return LineError(line_no, "nested method");
      if (f.size() < 3) {
        return LineError(line_no, "usage: method <name> <sig> [locals=N]");
      }
      method.name_idx = cf.InternUtf8(f[1]);
      JAGUAR_ASSIGN_OR_RETURN(Signature sig, Signature::Parse(f[2]));
      method.sig_idx = cf.InternUtf8(f[2]);
      method.max_locals = static_cast<uint16_t>(sig.params.size());
      for (size_t i = 3; i < f.size(); ++i) {
        if (StartsWith(f[i], "locals=")) {
          method.max_locals =
              static_cast<uint16_t>(std::atoi(f[i].c_str() + 7));
        } else if (StartsWith(f[i], "stack=")) {
          method.max_stack =
              static_cast<uint16_t>(std::atoi(f[i].c_str() + 6));
        } else {
          return LineError(line_no, "unknown method attribute " + f[i]);
        }
      }
      in_method = true;
      continue;
    }
    if (f[0] == "end") {
      if (!in_method) return LineError(line_no, "'end' outside method");
      JAGUAR_RETURN_IF_ERROR(finish_method(line_no));
      continue;
    }
    if (!in_method) {
      return LineError(line_no, "instruction outside method: " + f[0]);
    }

    // Label definition: "name:".
    if (f.size() == 1 && EndsWith(f[0], ":")) {
      std::string label = f[0].substr(0, f[0].size() - 1);
      if (labels.count(label) != 0) {
        return LineError(line_no, "duplicate label '" + label + "'");
      }
      labels[label] = code.size();
      continue;
    }

    const std::string& mnemonic = f[0];
    if (auto it = SimpleOps().find(mnemonic); it != SimpleOps().end()) {
      if (f.size() != 1) return LineError(line_no, mnemonic + " takes no operand");
      code.Emit(it->second);
      continue;
    }
    if (mnemonic == "iconst") {
      if (f.size() != 2) return LineError(line_no, "iconst <imm>");
      code.EmitImm(Op::kIConst, std::strtoll(f[1].c_str(), nullptr, 0));
      continue;
    }
    if (auto it = LocalOps().find(mnemonic); it != LocalOps().end()) {
      if (f.size() != 2) return LineError(line_no, mnemonic + " <local>");
      code.EmitA(it->second, static_cast<uint32_t>(std::atoi(f[1].c_str())));
      continue;
    }
    if (auto it = BranchOps().find(mnemonic); it != BranchOps().end()) {
      if (f.size() != 2) return LineError(line_no, mnemonic + " <label>");
      uint32_t off = code.EmitA(it->second, 0);
      pending.push_back({off, f[1], line_no});
      continue;
    }
    if (mnemonic == "call") {
      if (f.size() != 3) return LineError(line_no, "call <Class.method> <sig>");
      size_t dot = f[1].find('.');
      if (dot == std::string::npos) {
        return LineError(line_no, "call target must be Class.method");
      }
      JAGUAR_RETURN_IF_ERROR(Signature::Parse(f[2]).status());
      uint16_t idx =
          cf.AddMethodRef(f[1].substr(0, dot), f[1].substr(dot + 1), f[2]);
      code.EmitA(Op::kCall, idx);
      continue;
    }
    if (mnemonic == "callnative") {
      if (f.size() != 3) return LineError(line_no, "callnative <name> <sig>");
      JAGUAR_RETURN_IF_ERROR(Signature::Parse(f[2]).status());
      uint16_t idx = cf.AddNativeRef(f[1], f[2]);
      code.EmitA(Op::kCallNative, idx);
      continue;
    }
    return LineError(line_no, "unknown mnemonic '" + mnemonic + "'");
  }

  if (in_method) {
    return LineError(line_no, "missing 'end' at end of input");
  }
  if (cf.class_name.empty()) {
    return InvalidArgument("no 'class' directive");
  }
  return cf;
}

}  // namespace jvm
}  // namespace jaguar
