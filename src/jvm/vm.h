#ifndef JAGUAR_JVM_VM_H_
#define JAGUAR_JVM_VM_H_

/// \file vm.h
/// The JagVM virtual machine and its embedding interface.
///
/// `Jvm` is the heavyweight, create-once object — the paper creates "a single
/// JVM when the database server starts up, used until shutdown" (Section
/// 4.2); we do the same. It owns native-method registrations, the system
/// class loader, and the JIT code cache.
///
/// `ExecContext` is the per-invocation boundary object, playing the role of a
/// JNIEnv: it marshals arguments across the language boundary (byte arrays
/// are *copied* into the VM heap — the paper's "impedance mismatch" cost),
/// carries the security manager and resource quotas, and exposes the typed
/// call API. Values cross the boundary as 64-bit slots; references are
/// `ArrayObject*` within the VM.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/slice.h"
#include "common/status.h"
#include "jvm/class_loader.h"
#include "jvm/heap.h"
#include "jvm/security.h"

namespace jaguar {
namespace jvm {

class Jvm;
class ExecContext;

/// Arguments/result view for a native method implementation.
struct NativeCallInfo {
  ExecContext* ctx = nullptr;
  /// One slot per declared parameter; integer slots hold the value,
  /// reference slots hold an ArrayObject*.
  const int64_t* args = nullptr;
  /// Result slot (ignored for void signatures). For reference-returning
  /// natives, store the ArrayObject* bit-cast to int64_t.
  int64_t result = 0;
};

using NativeImpl = std::function<Status(NativeCallInfo*)>;

/// A native ("intrinsic") method callable from bytecode via `callnative`.
/// Every call is gated by the security manager on `permission`.
struct NativeMethod {
  std::string name;        ///< e.g. "Jaguar.callback".
  Signature sig;
  std::string permission;  ///< e.g. "udf.callback".
  NativeImpl fn;
};

/// Runtime trap codes shared by the interpreter and the JIT.
enum class Trap : int64_t {
  kNone = 0,
  kDivByZero = 1,
  kBounds = 2,
  kBudget = 3,
  kHeap = 4,
  kDepth = 5,
  kSecurity = 6,
  kNative = 7,   ///< Native method returned an error (see pending_error()).
  kInternal = 8,
};

/// Maps a trap to a Status (kNative consults `pending`).
Status TrapToStatus(Trap trap, const Status& pending);

struct JvmOptions {
  /// Compile verified methods to x86-64 machine code on first call. When
  /// false, everything interprets (the ablation for the paper's JIT claim).
  bool enable_jit = true;
  /// Emit per-block instruction-budget checks in JIT code (Section 6.2
  /// resource accounting). Disable only for the accounting-overhead
  /// ablation: without it, runaway JIT-compiled loops cannot be stopped.
  bool jit_budget_checks = true;
  ResourceLimits default_limits;
};

/// Statistics counters (cumulative per Jvm). Atomics: one Jvm serves every
/// worker thread of a parallel query.
struct JvmStats {
  std::atomic<uint64_t> invocations{0};
  std::atomic<uint64_t> methods_jitted{0};
  std::atomic<uint64_t> native_calls{0};
};

class Jvm {
 public:
  explicit Jvm(JvmOptions options = {});
  ~Jvm();

  Jvm(const Jvm&) = delete;
  Jvm& operator=(const Jvm&) = delete;

  /// Registers a native method; fails on duplicate name.
  Status RegisterNative(NativeMethod method);
  Result<const NativeMethod*> FindNative(const std::string& name) const;

  /// The trusted root namespace (parent for UDF namespaces).
  ClassLoader* system_loader() { return &system_loader_; }

  const JvmOptions& options() const { return options_; }
  void set_jit_enabled(bool enabled) { options_.enable_jit = enabled; }
  const JvmStats& stats() const { return stats_; }

  /// Server-wide security audit trail (Section 6.1's missing capability).
  AuditLog* audit_log() { return &audit_log_; }

  /// Internal: returns (compiling on demand) the JIT entry point for a
  /// method, or null if JIT is disabled or the platform is unsupported.
  Result<const void*> GetJitEntry(const LoadedClass& cls,
                                  const VerifiedMethod& method);

 private:
  friend class ExecContext;

  JvmOptions options_;
  ClassLoader system_loader_;
  AuditLog audit_log_;
  std::map<std::string, NativeMethod> natives_;
  /// Serializes JIT compilation and cache mutation: parallel workers share
  /// one Jvm, and the first call to a method from two threads at once must
  /// not compile (or insert) twice.
  std::mutex jit_mutex_;
  /// JIT artifacts keyed by method identity; owns executable memory.
  /// Guarded by jit_mutex_.
  std::unordered_map<const VerifiedMethod*, std::unique_ptr<class JitArtifact>>
      jit_cache_;
  JvmStats stats_;
};

/// Frame structure passed to JIT-compiled code. Field offsets are part of
/// the JIT ABI — do not reorder.
struct JitCallFrame {
  int64_t* locals;          // +0
  int64_t* spill;           // +8   canonical operand-stack memory
  ExecContext* ctx;         // +16
  int64_t trap;             // +24  Trap code out
  int64_t* budget;          // +32  instructions-remaining counter
  const LoadedClass* cls;   // +40  for constant-pool resolution in helpers
};

/// One UDF invocation's execution context ("our JNIEnv").
class ExecContext {
 public:
  /// \param user_data opaque pointer surfaced to native methods (the UDF
  /// runner stores its UdfContext here so callbacks can reach the server).
  ExecContext(Jvm* vm, const ClassLoader* loader,
              const SecurityManager* security, ResourceLimits limits,
              void* user_data = nullptr);

  // -- Marshalling (the language-boundary copies) ---------------------------

  /// Copies `data` into the VM heap (charged against the quota).
  Result<ArrayObject*> NewByteArray(Slice data);
  Result<ArrayObject*> NewIntArray(const std::vector<int64_t>& data);
  /// Copies a VM byte array back out.
  static std::vector<uint8_t> ReadByteArray(const ArrayObject* arr);

  // -- Calls ----------------------------------------------------------------

  /// Invokes `cls.method` with raw slots; returns the raw result slot
  /// (undefined for void methods).
  Result<int64_t> CallStatic(const std::string& cls, const std::string& method,
                             const std::vector<int64_t>& args);

  /// A static entry point resolved once and called many times — what the
  /// batched runner hoists out of the per-tuple loop (Section 2.5).
  struct ResolvedStatic {
    const LoadedClass* cls = nullptr;
    const VerifiedMethod* method = nullptr;
  };

  /// Resolves `cls.method` through this context's loader.
  Result<ResolvedStatic> ResolveStatic(const std::string& cls,
                                       const std::string& method) const;

  /// `CallStatic` minus the name lookups: arity check, invocation count,
  /// dispatch.
  Result<int64_t> CallResolvedStatic(const ResolvedStatic& target,
                                     const std::vector<int64_t>& args);

  /// Recycles the context between items of one batched crossing: resets the
  /// heap (dropping every live reference — callers must copy results out
  /// first) and refills the instruction budget, so each item runs under the
  /// same per-invocation quotas as a fresh ExecContext.
  void ResetForNextItem();

  /// Internal: dispatches an already-resolved method (JIT or interpreter).
  Result<int64_t> CallResolved(const LoadedClass& cls,
                               const VerifiedMethod& method,
                               const int64_t* args);

  // -- State ----------------------------------------------------------------

  Jvm* vm() { return vm_; }
  VmHeap& heap() { return heap_; }
  const ClassLoader* loader() const { return loader_; }
  const SecurityManager* security() const { return security_; }
  void* user_data() const { return user_data_; }

  /// Arms the query deadline for this crossing (null = unbounded). The
  /// interpreter polls it periodically; JIT-compiled code can only be
  /// stopped by its per-block budget checks, so when the configured
  /// instruction budget is unlimited it is capped to a finite
  /// deadline-derived probe — a runaway JIT loop then traps on kBudget,
  /// which is reported as DeadlineExceeded once the deadline has passed.
  void set_deadline(const QueryDeadline* deadline);
  const QueryDeadline* deadline() const { return deadline_; }
  /// True when the current budget is the deadline-derived probe cap rather
  /// than a user-configured quota — a budget trap then means the deadline
  /// mechanism fired, and is reported as DeadlineExceeded.
  bool deadline_budget() const { return deadline_budget_; }

  int64_t* budget_ptr() { return &budget_; }
  uint64_t instructions_retired() const {
    return static_cast<uint64_t>(initial_budget_ - budget_);
  }
  uint64_t native_calls() const { return native_calls_; }

  /// Error stashed by a failing native method (picked up on Trap::kNative).
  const Status& pending_error() const { return pending_error_; }
  void set_pending_error(Status s) { pending_error_ = std::move(s); }
  void count_native_call() { ++native_calls_; }

  Status EnterCall();
  void LeaveCall() { --depth_; }

 private:
  void ApplyDeadlineBudgetCap();

  Jvm* vm_;
  const ClassLoader* loader_;
  const SecurityManager* security_;
  ResourceLimits limits_;
  VmHeap heap_;
  int64_t budget_;
  int64_t initial_budget_;
  uint32_t depth_ = 0;
  void* user_data_;
  Status pending_error_;
  uint64_t native_calls_ = 0;
  const QueryDeadline* deadline_ = nullptr;
  bool deadline_budget_ = false;
};

/// Internal: resolves a `call` target through the defining loader, checking
/// that the referenced signature matches the target (link-time check).
Result<LoadedClass::ResolvedMethod> ResolveCall(const LoadedClass& cls,
                                                uint32_t cpool_idx);
/// Internal: resolves a `callnative` target, checking signature equality.
Result<const NativeMethod*> ResolveNative(Jvm* vm, const LoadedClass& cls,
                                          uint32_t cpool_idx);

/// Internal: invokes a native method with security check + error plumbing.
Result<int64_t> InvokeNative(ExecContext* ctx, const NativeMethod& native,
                             const int64_t* args);

}  // namespace jvm
}  // namespace jaguar

#endif  // JAGUAR_JVM_VM_H_
