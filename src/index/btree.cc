#include "index/btree.h"

#include <algorithm>
#include <cstring>

#include "common/bytes.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/page_edit.h"
#include "wal/crash_point.h"

namespace jaguar {

namespace {

constexpr uint8_t kLeafKind = 1;
constexpr uint8_t kInternalKind = 2;
constexpr size_t kNodeHeader = 8;  // kind u8, pad u8, count u16, next u32
constexpr size_t kNodeCapacity = kPageLsnOffset - kNodeHeader;

obs::Counter* InsertCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("exec.index.inserts");
  return c;
}

obs::Counter* DeleteCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("exec.index.deletes");
  return c;
}

int CompareRid(RecordId a, RecordId b) {
  if (a.page_id != b.page_id) return a.page_id < b.page_id ? -1 : 1;
  if (a.slot != b.slot) return a.slot < b.slot ? -1 : 1;
  return 0;
}

/// The smallest possible rid: the composite (key, kMinRid) sorts before
/// every real entry with that key, which is what scans descend with.
constexpr RecordId kMinRid{0, 0};

}  // namespace

const std::vector<std::string>& BTree::CrashPointNames() {
  static const std::vector<std::string> kNames = {
      "index.before_leaf_write",
      "index.mid_split",
      "index.after_split",
      "index.before_delete_write",
  };
  return kNames;
}

int BTree::CompareComposite(const Value& a_key, RecordId a_rid,
                            const Value& b_key, RecordId b_rid, Status* st) {
  Result<int> cmp = a_key.Compare(b_key);
  if (!cmp.ok()) {
    if (st->ok()) *st = cmp.status();
    return 0;
  }
  if (*cmp != 0) return *cmp;
  return CompareRid(a_rid, b_rid);
}

size_t BTree::EntrySize(const Entry& e, bool leaf) {
  return e.key.SerializedSize() + 6 + (leaf ? 0 : 4);
}

size_t BTree::NodeSize(const Node& n) {
  size_t size = 0;
  for (const Entry& e : n.entries) size += EntrySize(e, n.leaf);
  return size;
}

Result<PageId> BTree::Create(StorageEngine* engine) {
  JAGUAR_ASSIGN_OR_RETURN(PageId id, engine->AllocatePage());
  JAGUAR_ASSIGN_OR_RETURN(PageGuard page, engine->buffer_pool()->FetchPage(id));
  WalPageEdit edit(engine->wal(), &page);
  uint8_t* d = page.data();
  d[0] = kLeafKind;
  d[1] = 0;
  uint16_t count = 0;
  std::memcpy(d + 2, &count, 2);
  PageId next = kInvalidPageId;
  std::memcpy(d + 4, &next, 4);
  JAGUAR_RETURN_IF_ERROR(edit.Commit());
  return id;
}

Result<BTree::Node> BTree::ReadNode(PageId id) {
  JAGUAR_ASSIGN_OR_RETURN(PageGuard page,
                          engine_->buffer_pool()->FetchPage(id));
  const uint8_t* d = page.data();
  Node node;
  if (d[0] == kLeafKind) {
    node.leaf = true;
  } else if (d[0] == kInternalKind) {
    node.leaf = false;
  } else {
    return Corruption(StringPrintf("index page %u has bad kind byte %u",
                                   id, d[0]));
  }
  uint16_t count;
  std::memcpy(&count, d + 2, 2);
  std::memcpy(&node.next, d + 4, 4);
  BufferReader r(Slice(d + kNodeHeader, kNodeCapacity));
  node.entries.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    Entry e;
    JAGUAR_ASSIGN_OR_RETURN(e.key, Value::ReadFrom(&r));
    JAGUAR_ASSIGN_OR_RETURN(e.rid.page_id, r.ReadU32());
    JAGUAR_ASSIGN_OR_RETURN(e.rid.slot, r.ReadU16());
    if (!node.leaf) {
      JAGUAR_ASSIGN_OR_RETURN(e.child, r.ReadU32());
    }
    node.entries.push_back(std::move(e));
  }
  return node;
}

Status BTree::WriteNode(PageId id, const Node& node) {
  BufferWriter w;
  for (const Entry& e : node.entries) {
    e.key.WriteTo(&w);
    w.PutU32(e.rid.page_id);
    w.PutU16(e.rid.slot);
    if (!node.leaf) w.PutU32(e.child);
  }
  if (w.size() > kNodeCapacity) {
    return Internal("index node overflows its page");  // split missed upstream
  }
  JAGUAR_ASSIGN_OR_RETURN(PageGuard page,
                          engine_->buffer_pool()->FetchPage(id));
  WalPageEdit edit(engine_->wal(), &page);
  uint8_t* d = page.data();
  d[0] = node.leaf ? kLeafKind : kInternalKind;
  d[1] = 0;
  uint16_t count = static_cast<uint16_t>(node.entries.size());
  std::memcpy(d + 2, &count, 2);
  std::memcpy(d + 4, &node.next, 4);
  if (w.size() > 0) std::memcpy(d + kNodeHeader, w.buffer().data(), w.size());
  return edit.Commit();
}

Result<size_t> BTree::ChildIndex(const Node& node, const Value& key,
                                 RecordId rid) {
  // Number of separators <= (key, rid); 0 selects the leftmost child.
  Status st;
  size_t idx = 0;
  for (const Entry& e : node.entries) {
    if (CompareComposite(e.key, e.rid, key, rid, &st) > 0) break;
    ++idx;
  }
  JAGUAR_RETURN_IF_ERROR(st);
  return idx;
}

PageId BTree::ChildAt(const Node& node, size_t idx) {
  return idx == 0 ? node.next : node.entries[idx - 1].child;
}

Result<PageId> BTree::DescendToLeaf(const Value& key, RecordId rid,
                                    std::vector<PageId>* path) {
  PageId pid = root_;
  // Height is logarithmic; 64 levels means a cycle in the page graph.
  for (int depth = 0; depth < 64; ++depth) {
    JAGUAR_ASSIGN_OR_RETURN(Node node, ReadNode(pid));
    if (node.leaf) return pid;
    if (path != nullptr) path->push_back(pid);
    JAGUAR_ASSIGN_OR_RETURN(size_t idx, ChildIndex(node, key, rid));
    pid = ChildAt(node, idx);
  }
  return Corruption("index deeper than 64 levels (page cycle?)");
}

Status BTree::Insert(const Value& key, RecordId rid) {
  if (key.is_null()) {
    return InvalidArgument("NULL keys are not stored in indexes");
  }
  if (key.SerializedSize() > kMaxKeyBytes) {
    return InvalidArgument(StringPrintf(
        "index key of %zu bytes exceeds the %zu-byte limit",
        key.SerializedSize(), kMaxKeyBytes));
  }
  std::vector<PageId> path;
  JAGUAR_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(key, rid, &path));
  JAGUAR_ASSIGN_OR_RETURN(Node leaf, ReadNode(leaf_id));

  Status st;
  size_t pos = 0;
  for (; pos < leaf.entries.size(); ++pos) {
    const Entry& e = leaf.entries[pos];
    int cmp = CompareComposite(e.key, e.rid, key, rid, &st);
    if (cmp == 0 && st.ok()) {
      return AlreadyExists("index entry already present");
    }
    if (cmp > 0) break;
  }
  JAGUAR_RETURN_IF_ERROR(st);
  Entry entry;
  entry.key = key;
  entry.rid = rid;
  leaf.entries.insert(leaf.entries.begin() + pos, std::move(entry));

  if (NodeSize(leaf) <= kNodeCapacity) {
    JAGUAR_CRASH_POINT("index.before_leaf_write");
    JAGUAR_RETURN_IF_ERROR(WriteNode(leaf_id, leaf));
  } else {
    JAGUAR_RETURN_IF_ERROR(
        SplitAndInsertUp(leaf_id, std::move(leaf), std::move(path)));
  }
  InsertCounter()->Add();
  return Status::OK();
}

Status BTree::SplitAndInsertUp(PageId pid, Node node,
                               std::vector<PageId> path) {
  while (true) {
    // Split by bytes so wide string keys and narrow int keys both end up
    // with balanced halves. Both sides keep at least one entry.
    const size_t total = NodeSize(node);
    size_t split = 1, acc = EntrySize(node.entries[0], node.leaf);
    while (split + 1 < node.entries.size() && acc < total / 2) {
      acc += EntrySize(node.entries[split], node.leaf);
      ++split;
    }

    Node right;
    right.leaf = node.leaf;
    Entry sep;
    if (node.leaf) {
      // Leaf split: the right node keeps every entry from `split` on and
      // the separator copies its first entry (entries stay in the leaf).
      right.entries.assign(std::make_move_iterator(node.entries.begin() + split),
                           std::make_move_iterator(node.entries.end()));
      node.entries.resize(split);
      sep.key = right.entries.front().key;
      sep.rid = right.entries.front().rid;
    } else {
      // Internal split: the median entry moves *up*; its child becomes the
      // right node's leftmost pointer.
      sep = std::move(node.entries[split]);
      right.next = sep.child;
      right.entries.assign(
          std::make_move_iterator(node.entries.begin() + split + 1),
          std::make_move_iterator(node.entries.end()));
      node.entries.resize(split);
    }

    const bool at_root = pid == root_ && path.empty();
    if (at_root) {
      // Root split with a stable root id: both halves move into fresh
      // pages and the root is rewritten as an internal node over them.
      JAGUAR_ASSIGN_OR_RETURN(PageId left_id, engine_->AllocatePage());
      JAGUAR_ASSIGN_OR_RETURN(PageId right_id, engine_->AllocatePage());
      if (node.leaf) {
        right.next = node.next;
        node.next = right_id;
      } else {
        // `node.next` (the old leftmost child) stays with the left half.
      }
      JAGUAR_RETURN_IF_ERROR(WriteNode(right_id, right));
      JAGUAR_CRASH_POINT("index.mid_split");
      JAGUAR_RETURN_IF_ERROR(WriteNode(left_id, node));
      Node new_root;
      new_root.leaf = false;
      new_root.next = left_id;
      sep.child = right_id;
      new_root.entries.push_back(std::move(sep));
      JAGUAR_RETURN_IF_ERROR(WriteNode(root_, new_root));
      JAGUAR_CRASH_POINT("index.after_split");
      return Status::OK();
    }

    JAGUAR_ASSIGN_OR_RETURN(PageId right_id, engine_->AllocatePage());
    if (node.leaf) {
      right.next = node.next;
      node.next = right_id;
    }
    JAGUAR_RETURN_IF_ERROR(WriteNode(right_id, right));
    JAGUAR_CRASH_POINT("index.mid_split");
    JAGUAR_RETURN_IF_ERROR(WriteNode(pid, node));
    sep.child = right_id;

    PageId parent_id = path.back();
    path.pop_back();
    JAGUAR_ASSIGN_OR_RETURN(Node parent, ReadNode(parent_id));
    Status st;
    size_t pos = 0;
    for (; pos < parent.entries.size(); ++pos) {
      const Entry& e = parent.entries[pos];
      if (CompareComposite(e.key, e.rid, sep.key, sep.rid, &st) > 0) break;
    }
    JAGUAR_RETURN_IF_ERROR(st);
    parent.entries.insert(parent.entries.begin() + pos, std::move(sep));
    if (NodeSize(parent) <= kNodeCapacity) {
      JAGUAR_RETURN_IF_ERROR(WriteNode(parent_id, parent));
      JAGUAR_CRASH_POINT("index.after_split");
      return Status::OK();
    }
    pid = parent_id;
    node = std::move(parent);
  }
}

Status BTree::Delete(const Value& key, RecordId rid) {
  if (key.is_null()) {
    return InvalidArgument("NULL keys are not stored in indexes");
  }
  JAGUAR_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(key, rid, nullptr));
  JAGUAR_ASSIGN_OR_RETURN(Node leaf, ReadNode(leaf_id));
  Status st;
  for (size_t i = 0; i < leaf.entries.size(); ++i) {
    const Entry& e = leaf.entries[i];
    int cmp = CompareComposite(e.key, e.rid, key, rid, &st);
    JAGUAR_RETURN_IF_ERROR(st);
    if (cmp == 0) {
      leaf.entries.erase(leaf.entries.begin() + i);
      JAGUAR_CRASH_POINT("index.before_delete_write");
      JAGUAR_RETURN_IF_ERROR(WriteNode(leaf_id, leaf));
      DeleteCounter()->Add();
      return Status::OK();
    }
    if (cmp > 0) break;
  }
  return NotFound("index entry not found");
}

Result<std::vector<RecordId>> BTree::SearchEqual(const Value& key) {
  Bound b{key, true};
  return Scan(b, b);
}

Result<std::vector<RecordId>> BTree::Scan(const std::optional<Bound>& lower,
                                          const std::optional<Bound>& upper) {
  std::vector<RecordId> out;
  PageId pid;
  if (lower.has_value()) {
    if (lower->key.is_null()) return out;  // NULL bounds match nothing
    JAGUAR_ASSIGN_OR_RETURN(pid, DescendToLeaf(lower->key, kMinRid, nullptr));
  } else {
    // Leftmost leaf: descend through every leftmost pointer.
    pid = root_;
    for (int depth = 0;; ++depth) {
      if (depth >= 64) return Corruption("index deeper than 64 levels");
      JAGUAR_ASSIGN_OR_RETURN(Node node, ReadNode(pid));
      if (node.leaf) break;
      pid = node.next;
    }
  }
  if (upper.has_value() && upper->key.is_null()) return out;

  // Walk the leaf chain from the start leaf, skipping entries below the
  // lower bound and stopping at the first entry above the upper bound.
  for (int hops = 0; pid != kInvalidPageId; ++hops) {
    if (hops > 1 << 24) return Corruption("leaf chain cycle");
    JAGUAR_ASSIGN_OR_RETURN(Node leaf, ReadNode(pid));
    if (!leaf.leaf) return Corruption("leaf chain reached an internal node");
    for (const Entry& e : leaf.entries) {
      if (lower.has_value()) {
        JAGUAR_ASSIGN_OR_RETURN(int cmp, e.key.Compare(lower->key));
        if (cmp < 0 || (cmp == 0 && !lower->inclusive)) continue;
      }
      if (upper.has_value()) {
        JAGUAR_ASSIGN_OR_RETURN(int cmp, e.key.Compare(upper->key));
        if (cmp > 0 || (cmp == 0 && !upper->inclusive)) return out;
      }
      out.push_back(e.rid);
    }
    pid = leaf.next;
  }
  return out;
}

Status BTree::CollectPages(PageId id, std::vector<PageId>* out) {
  if (out->size() > (1u << 24)) return Corruption("index page graph cycle");
  out->push_back(id);
  JAGUAR_ASSIGN_OR_RETURN(Node node, ReadNode(id));
  if (node.leaf) return Status::OK();
  JAGUAR_RETURN_IF_ERROR(CollectPages(node.next, out));
  for (const Entry& e : node.entries) {
    JAGUAR_RETURN_IF_ERROR(CollectPages(e.child, out));
  }
  return Status::OK();
}

Status BTree::Clear() {
  std::vector<PageId> pages;
  JAGUAR_RETURN_IF_ERROR(CollectPages(root_, &pages));
  for (PageId id : pages) {
    if (id == root_) continue;
    JAGUAR_RETURN_IF_ERROR(engine_->FreePage(id));
  }
  Node empty;
  return WriteNode(root_, empty);
}

Status BTree::DropAll() {
  std::vector<PageId> pages;
  JAGUAR_RETURN_IF_ERROR(CollectPages(root_, &pages));
  for (PageId id : pages) {
    JAGUAR_RETURN_IF_ERROR(engine_->FreePage(id));
  }
  return Status::OK();
}

Result<uint64_t> BTree::CountEntries() {
  JAGUAR_ASSIGN_OR_RETURN(std::vector<RecordId> all,
                          Scan(std::nullopt, std::nullopt));
  return static_cast<uint64_t>(all.size());
}

Status BTree::CheckInvariants() {
  // Full key-order scan must be sorted by the composite, and the leaf chain
  // must enumerate exactly the pages the internal structure reaches.
  std::vector<std::pair<Value, RecordId>> entries;
  PageId pid = root_;
  for (int depth = 0;; ++depth) {
    if (depth >= 64) return Corruption("index deeper than 64 levels");
    JAGUAR_ASSIGN_OR_RETURN(Node node, ReadNode(pid));
    if (node.leaf) break;
    Status st;
    for (size_t i = 1; i < node.entries.size(); ++i) {
      if (CompareComposite(node.entries[i - 1].key, node.entries[i - 1].rid,
                           node.entries[i].key, node.entries[i].rid,
                           &st) >= 0 ||
          !st.ok()) {
        return Corruption("internal separators out of order");
      }
    }
    pid = node.next;
  }
  for (int hops = 0; pid != kInvalidPageId; ++hops) {
    if (hops > 1 << 24) return Corruption("leaf chain cycle");
    JAGUAR_ASSIGN_OR_RETURN(Node leaf, ReadNode(pid));
    if (!leaf.leaf) return Corruption("leaf chain reached an internal node");
    for (const Entry& e : leaf.entries) entries.emplace_back(e.key, e.rid);
    pid = leaf.next;
  }
  Status st;
  for (size_t i = 1; i < entries.size(); ++i) {
    if (CompareComposite(entries[i - 1].first, entries[i - 1].second,
                         entries[i].first, entries[i].second, &st) >= 0 ||
        !st.ok()) {
      return Corruption("leaf entries out of composite order");
    }
  }
  JAGUAR_ASSIGN_OR_RETURN(std::vector<RecordId> scanned,
                          Scan(std::nullopt, std::nullopt));
  if (scanned.size() != entries.size()) {
    return Corruption("scan and chain walk disagree on entry count");
  }
  return Status::OK();
}

}  // namespace jaguar
