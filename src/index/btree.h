#ifndef JAGUAR_INDEX_BTREE_H_
#define JAGUAR_INDEX_BTREE_H_

/// \file btree.h
/// A page-based secondary B+-tree keyed on one column value.
///
/// The tree maps (key Value, heap RecordId) pairs to the heap records they
/// index. Entries are ordered by the *composite* (key, rid) — duplicate keys
/// are allowed and deterministically ordered by rid, and every separator in
/// an internal node carries its rid so descent is exact even when one key
/// spans several leaves. NULL keys are never stored: SQL comparisons with
/// NULL are unknown, so an index scan that skips them agrees with a
/// predicate filter.
///
/// Page layout (all multi-byte fields little-endian, native memcpy):
///
///     [ u8 kind | u8 pad | u16 count | u32 next | entries... | lsn footer ]
///
/// * kind: 1 = leaf, 2 = internal.
/// * next: leaf — right-sibling page (kInvalidPageId at the end of the
///   chain); internal — the leftmost child.
/// * entries, serialized sequentially from offset 8:
///     leaf:     key (Value stream protocol) + rid (u32 page, u16 slot)
///     internal: key + rid + child (u32); `child` holds entries >= (key,rid).
/// * the final 8 bytes are the page's WAL LSN footer (page.h), never touched
///   here.
///
/// Durability: every page mutation goes through a committed `WalPageEdit`,
/// so index pages are logged and replayed exactly like heap pages. The root
/// page id is stable for the life of the index (a root split moves both
/// halves into freshly allocated children and rewrites the root as an
/// internal node in place), so the catalog records it once at CREATE INDEX.
///
/// Deletion is lazy: entries are removed from their leaf but nodes are never
/// merged or rebalanced, and empty leaves stay in the sibling chain. Scans
/// skip them; a rebuild (Clear + re-insert) compacts.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/storage_engine.h"
#include "types/value.h"

namespace jaguar {

class BTree {
 public:
  /// Largest serialized key accepted (tag + payload bytes). Guarantees a
  /// node always holds several entries, bounding tree height.
  static constexpr size_t kMaxKeyBytes = 1024;

  /// One side of a range scan.
  struct Bound {
    Value key;
    bool inclusive = true;
  };

  /// Attaches to an existing tree rooted at `root`.
  BTree(StorageEngine* engine, PageId root) : engine_(engine), root_(root) {}

  /// Allocates and formats a new empty tree (a single leaf); returns its
  /// root page id, which never changes afterwards.
  static Result<PageId> Create(StorageEngine* engine);

  PageId root() const { return root_; }

  /// Inserts (key, rid). The key must be non-NULL and serialize to at most
  /// kMaxKeyBytes; an exact (key, rid) duplicate is AlreadyExists.
  Status Insert(const Value& key, RecordId rid);

  /// Removes the exact (key, rid) entry; NotFound if absent.
  Status Delete(const Value& key, RecordId rid);

  /// All rids with key == `key`, in rid order.
  Result<std::vector<RecordId>> SearchEqual(const Value& key);

  /// All rids with lower <= key <= upper (each bound optional and
  /// independently inclusive/exclusive), in (key, rid) order.
  Result<std::vector<RecordId>> Scan(const std::optional<Bound>& lower,
                                     const std::optional<Bound>& upper);

  /// Empties the tree: frees every page except the root, which is
  /// re-formatted as an empty leaf. Used by the post-crash index rebuild.
  Status Clear();

  /// Frees every page including the root. The BTree must not be used after.
  Status DropAll();

  /// Number of entries (full scan; test/debug use).
  Result<uint64_t> CountEntries();

  /// Verifies node ordering, separator placement and the leaf chain.
  /// Test/debug use; errors are Corruption.
  Status CheckInvariants();

  /// Crash points compiled into the mutation paths, for the recovery test's
  /// index crash matrix (kept separate from wal::CrashPoints::AllNames(),
  /// whose matrix drives a heap-only workload).
  static const std::vector<std::string>& CrashPointNames();

 private:
  struct Entry {
    Value key;
    RecordId rid;
    PageId child = kInvalidPageId;  // internal nodes only
  };
  struct Node {
    bool leaf = true;
    PageId next = kInvalidPageId;  // leaf: right sibling; internal: leftmost
    std::vector<Entry> entries;
  };

  static int CompareComposite(const Value& a_key, RecordId a_rid,
                              const Value& b_key, RecordId b_rid, Status* st);

  Result<Node> ReadNode(PageId id);
  Status WriteNode(PageId id, const Node& node);
  static size_t EntrySize(const Entry& e, bool leaf);
  static size_t NodeSize(const Node& n);

  /// Child index chosen for (key, rid) in an internal node: 0 = leftmost.
  Result<size_t> ChildIndex(const Node& node, const Value& key, RecordId rid);
  static PageId ChildAt(const Node& node, size_t idx);

  /// Descends to the leaf whose range covers (key, rid), recording the
  /// internal pages visited (root first).
  Result<PageId> DescendToLeaf(const Value& key, RecordId rid,
                               std::vector<PageId>* path);

  Status SplitAndInsertUp(PageId pid, Node node, std::vector<PageId> path);
  Status CollectPages(PageId id, std::vector<PageId>* out);

  StorageEngine* engine_;
  PageId root_;
};

}  // namespace jaguar

#endif  // JAGUAR_INDEX_BTREE_H_
