#ifndef JAGUAR_WAL_CRASH_POINT_H_
#define JAGUAR_WAL_CRASH_POINT_H_

/// \file crash_point.h
/// Deterministic fault injection for crash-recovery testing.
///
/// The write path is instrumented with named crash points
/// (`JAGUAR_CRASH_POINT("wal.after_log_append")` etc.). In normal operation a
/// crash point is a single relaxed atomic load. A test arms exactly one point
/// — usually in a forked child — and the process calls `_exit` with
/// `CrashPoints::kExitCode` the first time execution reaches it, simulating a
/// power failure / SIGKILL at a precisely chosen instant. The parent then
/// reopens the database and asserts recovery produced a committed state.
///
/// Arming is programmatic (`CrashPoints::Arm`) or via the environment
/// variable `JAGUAR_CRASH_POINT`, read once on first use. Defining
/// `JAGUAR_DISABLE_CRASH_POINTS` compiles the hooks out entirely.

#include <string>
#include <vector>

namespace jaguar::wal {

class CrashPoints {
 public:
  /// Exit status used by an injected crash, so test parents can distinguish
  /// an intentional crash from an assertion failure or a clean exit.
  static constexpr int kExitCode = 42;

  /// The canonical crash points wired into the write path. The recovery test
  /// matrix iterates this list so a new point cannot be added without being
  /// exercised.
  static const std::vector<std::string>& AllNames();

  /// Arms `name`; the next time execution reaches it the process exits with
  /// kExitCode. Only one point is armed at a time (last call wins).
  static void Arm(const std::string& name);

  /// Disarms any armed point.
  static void Disarm();

  /// True when `name` is the armed point.
  static bool IsArmed(const char* name);

  /// Reports the hit and terminates the process immediately (no destructors,
  /// no buffer flushes — the closest portable approximation of a power cut).
  [[noreturn]] static void Die(const char* name);

  /// Fast-path check used by the JAGUAR_CRASH_POINT macro.
  static void MaybeCrash(const char* name) {
    if (AnyArmed() && IsArmed(name)) Die(name);
  }

 private:
  static bool AnyArmed();
};

}  // namespace jaguar::wal

#ifndef JAGUAR_DISABLE_CRASH_POINTS
#define JAGUAR_CRASH_POINT(name) ::jaguar::wal::CrashPoints::MaybeCrash(name)
#else
#define JAGUAR_CRASH_POINT(name) ((void)0)
#endif

#endif  // JAGUAR_WAL_CRASH_POINT_H_
