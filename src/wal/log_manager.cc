#include "wal/log_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "wal/crash_point.h"

namespace jaguar::wal {

namespace {

std::string Errno(const char* op) {
  return StringPrintf("%s failed: %s", op, std::strerror(errno));
}

obs::Counter* WalCounter(const char* which) {
  return obs::MetricsRegistry::Global()->GetCounter(std::string("wal.") +
                                                    which);
}

Status WriteAll(int fd, const uint8_t* data, size_t len, uint64_t off) {
  while (len > 0) {
    ssize_t n = ::pwrite(fd, data, len, static_cast<off_t>(off));
    if (n <= 0) return IoError(Errno("pwrite"));
    data += n;
    off += static_cast<uint64_t>(n);
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Best-effort fsync of the directory containing `path` so a rename is
/// durable. Failure is ignored: some filesystems refuse directory fsync.
void SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

LogManager::~LogManager() { Close().ok(); }

Status LogManager::WriteHeader(int fd, Lsn base_lsn) {
  BufferWriter w;
  w.PutU32(kMagic);
  w.PutU32(kVersion);
  w.PutU64(base_lsn);
  return WriteAll(fd, w.buffer().data(), w.size(), 0);
}

Status LogManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (is_open()) return Internal("log manager already open");
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return IoError(Errno("open"));
  path_ = path;

  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return IoError(Errno("lseek"));

  bool fresh = size < static_cast<off_t>(kHeaderSize);
  if (!fresh) {
    uint8_t hdr[kHeaderSize];
    ssize_t n = ::pread(fd_, hdr, kHeaderSize, 0);
    if (n != static_cast<ssize_t>(kHeaderSize)) return IoError(Errno("pread"));
    BufferReader r(Slice(hdr, kHeaderSize));
    uint32_t magic = r.ReadU32().value();
    uint32_t version = r.ReadU32().value();
    if (magic != kMagic) {
      // A header that never made it to disk intact (crash during log
      // creation) — start over; there is nothing replayable in this file.
      fresh = true;
    } else if (version != kVersion) {
      return NotSupported(
          StringPrintf("wal version %u (want %u)", version, kVersion));
    } else {
      base_lsn_ = r.ReadU64().value();
      if (base_lsn_ == kNullLsn) fresh = true;
    }
  }

  if (fresh) {
    base_lsn_ = 1;
    if (::ftruncate(fd_, 0) != 0) return IoError(Errno("ftruncate"));
    JAGUAR_RETURN_IF_ERROR(WriteHeader(fd_, base_lsn_));
    if (::fsync(fd_) != 0) return IoError(Errno("fsync"));
    write_off_ = synced_off_ = kHeaderSize;
    pending_.clear();
    return Status::OK();
  }

  // Scan the frame stream to find the end of the valid tail. A torn append
  // (bad length, bad CRC, or a stored LSN that disagrees with the frame's
  // file position) ends the log.
  uint64_t body_size = static_cast<uint64_t>(size) - kHeaderSize;
  std::vector<uint8_t> body(body_size);
  if (body_size > 0) {
    ssize_t n = ::pread(fd_, body.data(), body_size, kHeaderSize);
    if (n != static_cast<ssize_t>(body_size)) return IoError(Errno("pread"));
  }
  uint64_t off = 0;
  while (off < body_size) {
    Result<std::pair<WalRecord, size_t>> frame =
        ReadWalFrame(Slice(body.data() + off, body_size - off));
    if (!frame.ok()) break;
    if (frame->first.lsn != base_lsn_ + off) break;
    off += frame->second;
  }
  uint64_t end_off = kHeaderSize + off;
  if (end_off < static_cast<uint64_t>(size)) {
    if (::ftruncate(fd_, static_cast<off_t>(end_off)) != 0) {
      return IoError(Errno("ftruncate"));
    }
    if (::fsync(fd_) != 0) return IoError(Errno("fsync"));
  }
  write_off_ = synced_off_ = end_off;
  pending_.clear();
  return Status::OK();
}

Status LogManager::Close() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!is_open()) return Status::OK();
  Status s = FlushPendingLocked();
  if (s.ok()) s = SyncLocked();
  ::close(fd_);
  fd_ = -1;
  return s;
}

Result<Lsn> LogManager::Append(WalRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!is_open()) return Internal("log manager not open");
  Lsn lsn = base_lsn_ + (write_off_ + pending_.size() - kHeaderSize);
  rec.lsn = lsn;
  size_t frame_size = AppendWalFrame(rec, &pending_);
  static obs::Counter* appends = WalCounter("appends");
  static obs::Counter* bytes = WalCounter("bytes");
  appends->Add();
  bytes->Add(frame_size);
  JAGUAR_CRASH_POINT("wal.after_log_append");
  return lsn;
}

Status LogManager::FlushPendingLocked() {
  if (pending_.empty()) return Status::OK();
  JAGUAR_RETURN_IF_ERROR(
      WriteAll(fd_, pending_.data(), pending_.size(), write_off_));
  write_off_ += pending_.size();
  pending_.clear();
  return Status::OK();
}

Status LogManager::SyncLocked() {
  if (synced_off_ == write_off_) return Status::OK();
  if (::fsync(fd_) != 0) return IoError(Errno("fsync"));
  synced_off_ = write_off_;
  static obs::Counter* fsyncs = WalCounter("fsyncs");
  fsyncs->Add();
  return Status::OK();
}

Status LogManager::EnsureDurable(Lsn lsn) {
  if (lsn == kNullLsn) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!is_open()) return Internal("log manager not open");
  // A record starting at `lsn` is durable once the synced region extends
  // past it; flushes always cover whole frames.
  if (lsn < base_lsn_ + (synced_off_ - kHeaderSize)) return Status::OK();
  JAGUAR_RETURN_IF_ERROR(FlushPendingLocked());
  return SyncLocked();
}

Status LogManager::Commit() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!is_open()) return Internal("log manager not open");
  if (pending_.empty() && synced_off_ == write_off_) {
    // Everything this caller appended was already made durable by an earlier
    // fsync (another committer's, or the WAL rule's) — the group-commit win.
    static obs::Counter* group_commits = WalCounter("group_commits");
    group_commits->Add();
    return Status::OK();
  }
  JAGUAR_RETURN_IF_ERROR(FlushPendingLocked());
  if (!options_.fsync_on_commit) return Status::OK();
  return SyncLocked();
}

uint64_t LogManager::LogBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_off_ + pending_.size() - kHeaderSize;
}

Lsn LogManager::NextLsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return base_lsn_ + (write_off_ + pending_.size() - kHeaderSize);
}

Status LogManager::Checkpoint(uint32_t num_pages) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!is_open()) return Internal("log manager not open");
  Lsn next = base_lsn_ + (write_off_ + pending_.size() - kHeaderSize);

  // Build the replacement log in a temp file and rename it into place, so a
  // crash mid-checkpoint leaves either the full old log or the full new one.
  std::string tmp_path = path_ + ".tmp";
  int tmp = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tmp < 0) return IoError(Errno("open"));
  Status s = WriteHeader(tmp, next);
  std::vector<uint8_t> frame_bytes;
  WalRecord ckpt;
  ckpt.lsn = next;
  ckpt.type = WalRecordType::kCheckpoint;
  ckpt.page_id = kInvalidPageId;
  ckpt.aux = num_pages;
  size_t frame_size = AppendWalFrame(ckpt, &frame_bytes);
  if (s.ok()) {
    s = WriteAll(tmp, frame_bytes.data(), frame_bytes.size(), kHeaderSize);
  }
  if (s.ok() && ::fsync(tmp) != 0) s = IoError(Errno("fsync"));
  if (s.ok() && ::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    s = IoError(Errno("rename"));
  }
  if (!s.ok()) {
    ::close(tmp);
    ::unlink(tmp_path.c_str());
    return s;
  }
  SyncParentDir(path_);
  ::close(fd_);
  fd_ = tmp;
  base_lsn_ = next;
  write_off_ = synced_off_ = kHeaderSize + frame_size;
  pending_.clear();
  static obs::Counter* checkpoints = WalCounter("checkpoints");
  checkpoints->Add();
  return Status::OK();
}

Status LogManager::Recover(PageDevice* device, RecoveryStats* stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!is_open()) return Internal("log manager not open");
  RecoveryStats local;
  uint64_t body_size = write_off_ - kHeaderSize;
  std::vector<uint8_t> body(body_size);
  if (body_size > 0) {
    ssize_t n = ::pread(fd_, body.data(), body_size, kHeaderSize);
    if (n != static_cast<ssize_t>(body_size)) return IoError(Errno("pread"));
  }
  std::vector<uint8_t> page(kPageSize);
  uint64_t off = 0;
  while (off < body_size) {
    Result<std::pair<WalRecord, size_t>> frame =
        ReadWalFrame(Slice(body.data() + off, body_size - off));
    if (!frame.ok()) break;  // torn tail; Open already truncated, belt+braces
    const WalRecord& rec = frame->first;
    if (rec.lsn != base_lsn_ + off) break;
    off += frame->second;
    ++local.records_scanned;
    local.end_lsn = rec.lsn;
    switch (rec.type) {
      case WalRecordType::kPageAlloc:
        JAGUAR_RETURN_IF_ERROR(device->EnsureSize(rec.page_id + 1));
        break;
      case WalRecordType::kCheckpoint:
        JAGUAR_RETURN_IF_ERROR(device->EnsureSize(rec.aux));
        break;
      case WalRecordType::kPageWrite: {
        JAGUAR_RETURN_IF_ERROR(device->EnsureSize(rec.page_id + 1));
        JAGUAR_RETURN_IF_ERROR(device->ReadPage(rec.page_id, page.data()));
        if (rec.lsn > PageLsn(page.data())) {
          if (!rec.data.empty()) {
            std::memcpy(page.data() + rec.offset, rec.data.data(),
                        rec.data.size());
          }
          SetPageLsn(page.data(), rec.lsn);
          JAGUAR_RETURN_IF_ERROR(device->WritePage(rec.page_id, page.data()));
          ++local.pages_replayed;
        } else {
          ++local.pages_skipped;
        }
        break;
      }
      case WalRecordType::kPageFree:
      case WalRecordType::kCatalogRoot:
        // Markers: their physical effects travel in kPageWrite records.
        break;
    }
  }
  JAGUAR_RETURN_IF_ERROR(device->Sync());
  static obs::Counter* replayed = WalCounter("recovery.replayed");
  static obs::Counter* skipped = WalCounter("recovery.skipped");
  replayed->Add(local.pages_replayed);
  skipped->Add(local.pages_skipped);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace jaguar::wal
