#ifndef JAGUAR_WAL_WAL_RECORD_H_
#define JAGUAR_WAL_WAL_RECORD_H_

/// \file wal_record.h
/// Redo log record format and its on-disk framing.
///
/// Every record is a physical *after-image*: it says "these bytes of page P
/// now look like this", which makes replay idempotent — applying a record
/// twice yields the same page. Records are written inside CRC-framed chunks:
///
///     frame   := len (u32) | crc32 (u32, over payload) | payload
///     payload := lsn (u64) | type (u8) | page_id (u32) | offset (u32) |
///                aux (u32) | data_len (u32) | data
///
/// The CRC plus the "stored LSN must equal the LSN implied by the file
/// offset" rule let the recovery tail scan stop cleanly at the first torn or
/// garbage append instead of replaying it.

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"

namespace jaguar::wal {

/// Log sequence number. LSNs are byte offsets into the logical log stream
/// (monotonic across checkpoint truncations via a persisted base), so "LSN of
/// the next record" is always `this record's LSN + its frame size`. LSN 0 is
/// reserved for "never logged" — fresh pages carry it in their footer.
using Lsn = uint64_t;

inline constexpr Lsn kNullLsn = 0;

enum class WalRecordType : uint8_t {
  /// After-image of a byte range of one page (covers tuple inserts/deletes,
  /// header-field updates, page formats — anything a page edit produced).
  kPageWrite = 1,
  /// The file grew to include `page_id`; replay re-extends a shorter file.
  kPageAlloc = 2,
  /// `page_id` went on the free list. Marker only: the physical link/header
  /// changes travel in their own kPageWrite records.
  kPageFree = 3,
  /// The catalog root moved to `aux`. Marker only, like kPageFree.
  kCatalogRoot = 4,
  /// Start-of-log checkpoint: everything at or below this LSN is on disk in
  /// the data file. `aux` records the data file's page count.
  kCheckpoint = 5,
};

inline constexpr uint8_t kMinWalRecordType = 1;
inline constexpr uint8_t kMaxWalRecordType = 5;

struct WalRecord {
  Lsn lsn = kNullLsn;
  WalRecordType type = WalRecordType::kPageWrite;
  PageId page_id = kInvalidPageId;
  /// Byte offset within the page of `data` (kPageWrite only).
  uint32_t offset = 0;
  /// Type-specific scalar (catalog root id, checkpoint page count).
  uint32_t aux = 0;
  /// After-image bytes (kPageWrite only).
  std::vector<uint8_t> data;

  bool operator==(const WalRecord& o) const {
    return lsn == o.lsn && type == o.type && page_id == o.page_id &&
           offset == o.offset && aux == o.aux && data == o.data;
  }
};

/// Frame header: len + crc.
inline constexpr uint32_t kWalFrameHeaderSize = 8;
/// Payload fields before `data`: lsn + type + page_id + offset + aux +
/// data_len.
inline constexpr uint32_t kWalPayloadHeaderSize = 8 + 1 + 4 + 4 + 4 + 4;
/// Upper bound on one payload; a record never carries more than a page.
inline constexpr uint32_t kMaxWalPayloadSize =
    kWalPayloadHeaderSize + kPageSize;

/// Serializes the payload (no frame) of `rec` into `w`.
void EncodeWalRecord(const WalRecord& rec, BufferWriter* w);

/// Decodes one payload. Validates the type tag, that a kPageWrite's byte
/// range lies within a page, and that no trailing bytes remain. Returns
/// Corruption (never crashes) on malformed input.
Result<WalRecord> DecodeWalRecord(Slice payload);

/// Appends the full frame (len | crc | payload) for `rec` to `out`.
/// \return the frame's size in bytes.
size_t AppendWalFrame(const WalRecord& rec, std::vector<uint8_t>* out);

/// Parses the frame at the head of `buf`. On success also returns the frame
/// size so callers can advance. Any truncation, bad length, CRC mismatch or
/// payload corruption yields a clean non-OK status — this is the function the
/// recovery tail scan leans on.
Result<std::pair<WalRecord, size_t>> ReadWalFrame(Slice buf);

}  // namespace jaguar::wal

#endif  // JAGUAR_WAL_WAL_RECORD_H_
