#include "wal/crash_point.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace jaguar::wal {

namespace {

std::atomic<bool> g_any_armed{false};
std::mutex g_mutex;
std::string& ArmedName() {
  static std::string name;
  return name;
}

void LoadFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("JAGUAR_CRASH_POINT");
    if (env != nullptr && env[0] != '\0') {
      std::lock_guard<std::mutex> lock(g_mutex);
      ArmedName() = env;
      g_any_armed.store(true, std::memory_order_release);
    }
  });
}

}  // namespace

const std::vector<std::string>& CrashPoints::AllNames() {
  static const std::vector<std::string> names = {
      "wal.after_log_append",
      "storage.before_page_write",
      "storage.mid_page_write",
      "storage.after_page_write_before_header",
      "wal.mid_checkpoint",
  };
  return names;
}

void CrashPoints::Arm(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  ArmedName() = name;
  g_any_armed.store(!name.empty(), std::memory_order_release);
}

void CrashPoints::Disarm() {
  std::lock_guard<std::mutex> lock(g_mutex);
  ArmedName().clear();
  g_any_armed.store(false, std::memory_order_release);
}

bool CrashPoints::AnyArmed() {
  LoadFromEnvOnce();
  return g_any_armed.load(std::memory_order_acquire);
}

bool CrashPoints::IsArmed(const char* name) {
  if (!AnyArmed()) return false;
  std::lock_guard<std::mutex> lock(g_mutex);
  return ArmedName() == name;
}

void CrashPoints::Die(const char* name) {
  // stderr is unbuffered enough for the test parent to see the reason even
  // though we skip atexit handlers and stream flushes below.
  std::fprintf(stderr, "[jaguar] crash point hit: %s\n", name);
  ::_exit(kExitCode);
}

}  // namespace jaguar::wal
