#include "wal/wal_record.h"

#include "common/crc32.h"
#include "common/string_util.h"

namespace jaguar::wal {

void EncodeWalRecord(const WalRecord& rec, BufferWriter* w) {
  w->PutU64(rec.lsn);
  w->PutU8(static_cast<uint8_t>(rec.type));
  w->PutU32(rec.page_id);
  w->PutU32(rec.offset);
  w->PutU32(rec.aux);
  w->PutLengthPrefixed(Slice(rec.data.data(), rec.data.size()));
}

Result<WalRecord> DecodeWalRecord(Slice payload) {
  BufferReader r(payload);
  WalRecord rec;
  JAGUAR_ASSIGN_OR_RETURN(rec.lsn, r.ReadU64());
  JAGUAR_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
  if (type < kMinWalRecordType || type > kMaxWalRecordType) {
    return Corruption(StringPrintf("bad wal record type %u", type));
  }
  rec.type = static_cast<WalRecordType>(type);
  JAGUAR_ASSIGN_OR_RETURN(rec.page_id, r.ReadU32());
  JAGUAR_ASSIGN_OR_RETURN(rec.offset, r.ReadU32());
  JAGUAR_ASSIGN_OR_RETURN(rec.aux, r.ReadU32());
  JAGUAR_ASSIGN_OR_RETURN(Slice data, r.ReadLengthPrefixed());
  if (!r.AtEnd()) return Corruption("trailing bytes after wal record");
  if (rec.type == WalRecordType::kPageWrite) {
    if (rec.offset > kPageSize || data.size() > kPageSize ||
        rec.offset + data.size() > kPageSize) {
      return Corruption("wal page write outside page bounds");
    }
  }
  rec.data = data.ToVector();
  return rec;
}

size_t AppendWalFrame(const WalRecord& rec, std::vector<uint8_t>* out) {
  BufferWriter payload;
  EncodeWalRecord(rec, &payload);
  BufferWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload.buffer().data(), payload.size()));
  frame.PutBytes(payload.AsSlice());
  out->insert(out->end(), frame.buffer().begin(), frame.buffer().end());
  return frame.size();
}

Result<std::pair<WalRecord, size_t>> ReadWalFrame(Slice buf) {
  BufferReader r(buf);
  JAGUAR_ASSIGN_OR_RETURN(uint32_t len, r.ReadU32());
  JAGUAR_ASSIGN_OR_RETURN(uint32_t crc, r.ReadU32());
  if (len < kWalPayloadHeaderSize || len > kMaxWalPayloadSize) {
    return Corruption(StringPrintf("implausible wal frame length %u", len));
  }
  JAGUAR_ASSIGN_OR_RETURN(Slice payload, r.ReadBytes(len));
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Corruption("wal frame crc mismatch");
  }
  JAGUAR_ASSIGN_OR_RETURN(WalRecord rec, DecodeWalRecord(payload));
  return std::make_pair(std::move(rec),
                        static_cast<size_t>(kWalFrameHeaderSize + len));
}

}  // namespace jaguar::wal
