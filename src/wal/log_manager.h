#ifndef JAGUAR_WAL_LOG_MANAGER_H_
#define JAGUAR_WAL_LOG_MANAGER_H_

/// \file log_manager.h
/// ARIES-lite redo-only write-ahead log.
///
/// The contract with the storage layer:
///
///  * Every page mutation appends a physical after-image record *before* the
///    page can reach the data file; the assigned LSN is stamped into the
///    page's footer (`kPageLsnOffset` in storage/page.h).
///  * Before a dirty page is written, the buffer pool calls `EnsureDurable`
///    with the page's LSN — the WAL rule.
///  * `Commit()` makes all appended records durable with one fsync; callers
///    whose records were already covered by a concurrent commit skip the
///    fsync entirely (group commit).
///  * `Checkpoint()` — called after the buffer pool has flushed and the data
///    file is synced — atomically resets the log so replay length stays
///    bounded by the write traffic since the last checkpoint.
///  * On open after a crash, `Recover()` scans the tail and re-applies every
///    record whose LSN exceeds the footer LSN of its target page.
///
/// LSNs are logical byte offsets: `lsn = base_lsn + (frame offset in file -
/// header size)`. `base_lsn` is persisted in the log file header and advanced
/// at each checkpoint, so LSNs stay monotonic across truncations and a
/// record's stored LSN can be cross-checked against its position (a cheap
/// second integrity check beyond the frame CRC).
///
/// File layout:
///
///     header := magic "JWAL" (u32) | version (u32) | base_lsn (u64)
///     frames := see wal_record.h
///
/// The log manager knows nothing about the buffer pool or storage engine; it
/// sees the data file only through the narrow `PageDevice` interface, which
/// `DiskManager` implements.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "wal/wal_record.h"

namespace jaguar::wal {

/// Knobs threaded down from DatabaseOptions.
struct WalOptions {
  /// When false the engine runs without a log (legacy behavior); recovery
  /// and crash safety are off.
  bool enabled = true;
  /// fsync the log on every Commit(). Turning this off keeps the WAL rule
  /// (ordering) but trades durability of the last few statements for speed —
  /// useful for benchmarks.
  bool fsync_on_commit = true;
  /// Auto-checkpoint once the log grows past this many bytes.
  uint64_t checkpoint_bytes = 8ull << 20;
};

/// What redo did on open; exported as wal.recovery.* counters too.
struct RecoveryStats {
  uint64_t records_scanned = 0;
  uint64_t pages_replayed = 0;
  uint64_t pages_skipped = 0;
  Lsn end_lsn = kNullLsn;
};

/// Minimal view of the data file that redo needs. Implemented by
/// `DiskManager`; the indirection keeps libjaguar_wal free of a dependency
/// on the storage library (wal only includes header-only page constants).
class PageDevice {
 public:
  virtual ~PageDevice() = default;
  virtual Status ReadPage(PageId id, uint8_t* out) = 0;
  virtual Status WritePage(PageId id, const uint8_t* data) = 0;
  /// Grows the file with zeroed pages until it holds `num_pages` pages.
  virtual Status EnsureSize(uint32_t num_pages) = 0;
  virtual uint32_t num_pages() const = 0;
  virtual Status Sync() = 0;
};

class LogManager {
 public:
  static constexpr uint32_t kMagic = 0x4C41574Au;  // "JWAL"
  static constexpr uint32_t kVersion = 1;
  static constexpr uint32_t kHeaderSize = 16;

  explicit LogManager(WalOptions options) : options_(options) {}
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Opens (creating or re-initializing if absent/corrupt-headed) the log
  /// file at `path`. Scans existing frames to find the valid tail and
  /// truncates any torn append beyond it.
  Status Open(const std::string& path);

  /// Commits pending records and closes the file. Idempotent.
  Status Close();
  bool is_open() const { return fd_ >= 0; }

  /// Assigns the next LSN to `rec`, buffers its frame, and returns the LSN.
  /// Buffered records become durable on Commit()/EnsureDurable().
  Result<Lsn> Append(WalRecord rec);

  /// WAL rule hook: guarantees every record with LSN <= `lsn` is durable
  /// before returning. No-op for kNullLsn or already-durable LSNs.
  /// Internally synchronized: the buffer pool calls this off its shard
  /// latches — from foreground eviction write-backs, the background writer
  /// and the readahead worker's evictions — concurrently with appends on
  /// the query thread. After a checkpoint truncates the log, a stale page
  /// LSN is simply already-durable, so late write-backs remain no-ops.
  Status EnsureDurable(Lsn lsn);

  /// Makes everything appended so far durable. One fsync covers all pending
  /// records (group commit); a call that finds its records already durable
  /// skips the fsync and counts as a group commit.
  Status Commit();

  /// Bytes of log written since the last checkpoint (pending included);
  /// drives auto-checkpointing.
  uint64_t LogBytes() const;

  /// LSN the next Append() will assign.
  Lsn NextLsn() const;

  /// Atomically replaces the log with a fresh one whose base LSN continues
  /// the sequence, containing a single kCheckpoint record. The caller must
  /// have flushed all dirty pages and synced the data file first.
  /// \param num_pages current data-file page count, stored in the record.
  Status Checkpoint(uint32_t num_pages);

  /// Redo pass: replays every logged page write whose LSN exceeds the target
  /// page's footer LSN onto `device`, extending the file as needed, then
  /// syncs it. Stops cleanly at the first torn/corrupt frame.
  Status Recover(PageDevice* device, RecoveryStats* stats);

  const WalOptions& options() const { return options_; }

 private:
  Status WriteHeader(int fd, Lsn base_lsn);
  /// Appends pending frames to the file (no fsync). Requires mutex_ held.
  Status FlushPendingLocked();
  /// fsyncs the log file. Requires mutex_ held.
  Status SyncLocked();

  WalOptions options_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::string path_;
  Lsn base_lsn_ = 1;
  /// File offset where the next pending byte lands.
  uint64_t write_off_ = kHeaderSize;
  /// File offset up to which frames are fsync-durable.
  uint64_t synced_off_ = kHeaderSize;
  /// Encoded frames appended but not yet written to the file.
  std::vector<uint8_t> pending_;
};

}  // namespace jaguar::wal

#endif  // JAGUAR_WAL_LOG_MANAGER_H_
