#include "exec/index_scan.h"

#include <utility>

#include "obs/metrics.h"

namespace jaguar {
namespace exec {

namespace {

obs::Counter* ScansCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("exec.index.scans");
  return c;
}

obs::Counter* RangeScansCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("exec.index.range_scans");
  return c;
}

obs::Counter* LookupsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("exec.index.lookups");
  return c;
}

void FlattenAnd(BoundExprPtr e, std::vector<BoundExprPtr>* out) {
  if (e->kind == BoundExprKind::kBinary &&
      e->binary_op == sql::BinaryOp::kAnd) {
    FlattenAnd(std::move(e->left), out);
    FlattenAnd(std::move(e->right), out);
  } else {
    out->push_back(std::move(e));
  }
}

/// Refolds conjuncts left-associatively, matching the parser's AND shape.
/// AND is associative under three-valued logic, so any refold of the same
/// ordered conjuncts evaluates identically.
BoundExprPtr FoldAnd(std::vector<BoundExprPtr> conjuncts) {
  BoundExprPtr acc;
  for (BoundExprPtr& c : conjuncts) {
    if (acc == nullptr) {
      acc = std::move(c);
      continue;
    }
    auto node = std::make_unique<BoundExpr>();
    node->kind = BoundExprKind::kBinary;
    node->binary_op = sql::BinaryOp::kAnd;
    node->result_type = TypeId::kBool;
    node->left = std::move(acc);
    node->right = std::move(c);
    acc = std::move(node);
  }
  return acc;
}

sql::BinaryOp MirrorCmp(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kLt: return sql::BinaryOp::kGt;
    case sql::BinaryOp::kLe: return sql::BinaryOp::kGe;
    case sql::BinaryOp::kGt: return sql::BinaryOp::kLt;
    case sql::BinaryOp::kGe: return sql::BinaryOp::kLe;
    default: return op;
  }
}

struct ConjunctMatch {
  size_t column = 0;
  sql::BinaryOp op = sql::BinaryOp::kEq;
  Value literal;
};

std::optional<ConjunctMatch> MatchConjunct(const BoundExpr& e) {
  if (e.kind != BoundExprKind::kBinary) return std::nullopt;
  switch (e.binary_op) {
    case sql::BinaryOp::kEq:
    case sql::BinaryOp::kLt:
    case sql::BinaryOp::kLe:
    case sql::BinaryOp::kGt:
    case sql::BinaryOp::kGe:
      break;
    default:
      return std::nullopt;
  }
  const BoundExpr* col = nullptr;
  const BoundExpr* lit = nullptr;
  bool flipped = false;
  if (e.left->kind == BoundExprKind::kColumn &&
      e.right->kind == BoundExprKind::kLiteral) {
    col = e.left.get();
    lit = e.right.get();
  } else if (e.left->kind == BoundExprKind::kLiteral &&
             e.right->kind == BoundExprKind::kColumn) {
    col = e.right.get();
    lit = e.left.get();
    flipped = true;
  } else {
    return std::nullopt;
  }
  if (lit->literal.is_null()) return std::nullopt;
  ConjunctMatch m;
  m.column = col->column_index;
  m.op = flipped ? MirrorCmp(e.binary_op) : e.binary_op;
  m.literal = lit->literal;
  return m;
}

}  // namespace

std::optional<IndexPick> PickIndexScan(
    BoundExprPtr* where, const std::vector<IndexCandidate>& candidates,
    const Schema& schema) {
  if (where == nullptr || *where == nullptr || candidates.empty()) {
    return std::nullopt;
  }
  std::vector<BoundExprPtr> conjuncts;
  FlattenAnd(std::move(*where), &conjuncts);

  // Two passes: equality conjuncts beat range conjuncts; writing order
  // breaks ties.
  size_t chosen = conjuncts.size();
  const IndexCandidate* chosen_index = nullptr;
  ConjunctMatch chosen_match;
  for (int want_equality = 1; want_equality >= 0 && chosen_index == nullptr;
       --want_equality) {
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      std::optional<ConjunctMatch> m = MatchConjunct(*conjuncts[i]);
      if (!m.has_value()) continue;
      const bool is_eq = m->op == sql::BinaryOp::kEq;
      if (is_eq != (want_equality == 1)) continue;
      // The literal must match the column's declared type exactly: the
      // index compares stored keys, and cross-type comparisons (INT column,
      // DOUBLE literal) have coercion semantics the tree does not model.
      if (m->column >= schema.num_columns() ||
          m->literal.type() != schema.column(m->column).type) {
        continue;
      }
      for (const IndexCandidate& cand : candidates) {
        if (cand.column == m->column) {
          chosen = i;
          chosen_index = &cand;
          chosen_match = std::move(*m);
          break;
        }
      }
      if (chosen_index != nullptr) break;
    }
  }

  if (chosen_index == nullptr) {
    *where = FoldAnd(std::move(conjuncts));  // restore, order preserved
    return std::nullopt;
  }

  IndexPick pick;
  pick.root = chosen_index->root;
  pick.index_name = chosen_index->name;
  pick.column = chosen_match.column;
  switch (chosen_match.op) {
    case sql::BinaryOp::kEq:
      pick.lower = BTree::Bound{chosen_match.literal, true};
      pick.upper = BTree::Bound{chosen_match.literal, true};
      pick.equality = true;
      break;
    case sql::BinaryOp::kLt:
      pick.upper = BTree::Bound{chosen_match.literal, false};
      break;
    case sql::BinaryOp::kLe:
      pick.upper = BTree::Bound{chosen_match.literal, true};
      break;
    case sql::BinaryOp::kGt:
      pick.lower = BTree::Bound{chosen_match.literal, false};
      break;
    case sql::BinaryOp::kGe:
      pick.lower = BTree::Bound{chosen_match.literal, true};
      break;
    default:
      break;
  }
  conjuncts.erase(conjuncts.begin() + chosen);
  *where = FoldAnd(std::move(conjuncts));
  return pick;
}

IndexScanOp::IndexScanOp(StorageEngine* engine, PageId index_root,
                         PageId heap_first, Schema schema,
                         std::optional<BTree::Bound> lower,
                         std::optional<BTree::Bound> upper, bool equality)
    : tree_(engine, index_root),
      heap_(engine, heap_first),
      schema_(std::move(schema)),
      lower_(std::move(lower)),
      upper_(std::move(upper)),
      equality_(equality) {}

Status IndexScanOp::EnsureProbed() {
  if (probed_) return Status::OK();
  probed_ = true;
  JAGUAR_ASSIGN_OR_RETURN(rids_, tree_.Scan(lower_, upper_));
  ScansCounter()->Add();
  if (!equality_) RangeScansCounter()->Add();
  LookupsCounter()->Add(rids_.size());
  return Status::OK();
}

Result<std::optional<Tuple>> IndexScanOp::Next() {
  JAGUAR_RETURN_IF_ERROR(EnsureProbed());
  if (pos_ >= rids_.size()) return std::optional<Tuple>();
  const RecordId rid = rids_[pos_++];
  Result<std::vector<uint8_t>> bytes = heap_.Get(rid);
  if (!bytes.ok()) {
    // A dangling entry means maintenance and the heap disagree — surface it
    // as corruption rather than a silent missing row.
    if (bytes.status().IsNotFound()) {
      return Corruption("index entry points at a missing heap record");
    }
    return bytes.status();
  }
  JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(*bytes)));
  return std::optional<Tuple>(std::move(t));
}

}  // namespace exec
}  // namespace jaguar
