#ifndef JAGUAR_EXEC_OPERATORS_H_
#define JAGUAR_EXEC_OPERATORS_H_

/// \file operators.h
/// Pull-based ("Volcano"-style) query operators. PREDATOR evaluates all
/// expressions — including UDFs — serially per tuple; so do we. The plans the
/// paper's experiments need are SeqScan → Filter → Project → Limit.

#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "exec/expression.h"
#include "exec/tuple_batch.h"
#include "storage/table_heap.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace jaguar {
namespace exec {

class Operator {
 public:
  virtual ~Operator() = default;

  /// \return The next tuple, or nullopt at end of stream.
  virtual Result<std::optional<Tuple>> Next() = 0;

  /// Vectorized pull: clears `out` and fills it with up to `out->capacity()`
  /// tuples. An empty batch signals end of stream. The base implementation
  /// loops over `Next()`, so every operator supports the batch protocol;
  /// operators with a native batch path (scan/filter/project/limit) override
  /// it to evaluate expressions — and invoke UDFs — per batch instead of per
  /// tuple. Calls must not be interleaved with `Next()` on the same stream.
  virtual Status NextBatch(TupleBatch* out);

  /// Output schema of this operator.
  virtual const Schema& schema() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Full scan over a table heap, deserializing stored records to tuples.
class SeqScanOp : public Operator {
 public:
  SeqScanOp(StorageEngine* engine, PageId first_page, Schema schema)
      : heap_(engine, first_page),
        iter_(heap_.Scan()),
        schema_(std::move(schema)) {}

  Result<std::optional<Tuple>> Next() override;
  Status NextBatch(TupleBatch* out) override;
  const Schema& schema() const override { return schema_; }

 private:
  TableHeap heap_;
  TableHeap::Iterator iter_;
  Schema schema_;
};

/// Emits only tuples for which the predicate evaluates to true.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, BoundExprPtr predicate, UdfContext* ctx)
      : child_(std::move(child)),
        predicate_(std::move(predicate)),
        ctx_(ctx) {}

  Result<std::optional<Tuple>> Next() override;
  Status NextBatch(TupleBatch* out) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  BoundExprPtr predicate_;
  UdfContext* ctx_;
};

/// Computes output expressions per input tuple.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<BoundExprPtr> exprs,
            Schema out_schema, UdfContext* ctx)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        schema_(std::move(out_schema)),
        ctx_(ctx) {}

  Result<std::optional<Tuple>> Next() override;
  Status NextBatch(TupleBatch* out) override;
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr child_;
  std::vector<BoundExprPtr> exprs_;
  Schema schema_;
  UdfContext* ctx_;
};

/// Stops after `limit` tuples.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit)
      : child_(std::move(child)), remaining_(limit) {}

  Result<std::optional<Tuple>> Next() override;
  Status NextBatch(TupleBatch* out) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  int64_t remaining_;
};

}  // namespace exec
}  // namespace jaguar

#endif  // JAGUAR_EXEC_OPERATORS_H_
