#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "storage/table_heap.h"

namespace jaguar {
namespace exec {

namespace {

struct ParallelMetrics {
  obs::Counter* queries;
  obs::Counter* workers;
  obs::Counter* morsels;
  obs::Counter* tuples;
};

ParallelMetrics* Metrics() {
  static ParallelMetrics* m = [] {
    obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
    return new ParallelMetrics{
        reg->GetCounter("exec.parallel.queries"),
        reg->GetCounter("exec.parallel.workers"),
        reg->GetCounter("exec.parallel.morsels"),
        reg->GetCounter("exec.parallel.tuples"),
    };
  }();
  return m;
}

/// Filters + projects one batch of scanned tuples, appending the projected
/// rows to `out`. Mirrors FilterOp/ProjectOp::NextBatch semantics (UDFs
/// cross once per batch; any row error fails the batch).
Status ProcessBatch(const ParallelScanSpec& spec, std::vector<Tuple>* batch,
                    UdfContext* ctx, std::vector<Tuple>* out) {
  if (batch->empty()) return Status::OK();
  // Per-batch cancellation point: an expired deadline stops this worker
  // before the next round of (potentially expensive) UDF evaluation.
  JAGUAR_RETURN_IF_ERROR(CheckDeadline(spec.deadline));
  std::vector<Tuple> survivors;
  if (spec.predicate != nullptr) {
    JAGUAR_ASSIGN_OR_RETURN(std::vector<char> passes,
                            EvalPredicateBatch(*spec.predicate, *batch, ctx));
    for (size_t i = 0; i < batch->size(); ++i) {
      if (passes[i]) survivors.push_back(std::move((*batch)[i]));
    }
  } else {
    survivors = std::move(*batch);
  }
  batch->clear();
  if (survivors.empty()) return Status::OK();

  std::vector<std::vector<Value>> columns;
  columns.reserve(spec.out_exprs->size());
  for (const BoundExprPtr& e : *spec.out_exprs) {
    JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> column,
                            EvalBatch(*e, survivors, ctx));
    columns.push_back(std::move(column));
  }
  for (size_t row = 0; row < survivors.size(); ++row) {
    std::vector<Value> values;
    values.reserve(columns.size());
    for (std::vector<Value>& column : columns) {
      values.push_back(std::move(column[row]));
    }
    out->push_back(Tuple(std::move(values)));
  }
  return Status::OK();
}

/// Scans one morsel (a run of heap pages) through filter+project into
/// `out`, batch-at-a-time.
Status RunMorsel(const ParallelScanSpec& spec, TableHeap* heap,
                 const std::vector<PageId>& pages, size_t page_begin,
                 size_t page_end, UdfContext* ctx, std::vector<Tuple>* out) {
  std::vector<Tuple> batch;
  batch.reserve(spec.batch_size);
  for (size_t p = page_begin; p < page_end; ++p) {
    TableHeap::Iterator it = heap->ScanPage(pages[p]);
    while (true) {
      JAGUAR_ASSIGN_OR_RETURN(auto rec, it.Next());
      if (!rec.has_value()) break;
      JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
      batch.push_back(std::move(t));
      if (batch.size() >= spec.batch_size) {
        JAGUAR_RETURN_IF_ERROR(ProcessBatch(spec, &batch, ctx, out));
      }
    }
  }
  return ProcessBatch(spec, &batch, ctx, out);
}

}  // namespace

Result<std::vector<Tuple>> RunParallelScan(const ParallelScanSpec& spec) {
  if (spec.engine == nullptr || spec.out_exprs == nullptr) {
    return InvalidArgument("parallel scan spec is missing engine or exprs");
  }
  const size_t morsel_pages = spec.morsel_pages > 0 ? spec.morsel_pages : 1;
  const size_t batch_cap = spec.batch_size > 0 ? spec.batch_size : 1;

  TableHeap heap(spec.engine, spec.first_page);
  JAGUAR_ASSIGN_OR_RETURN(std::vector<PageId> pages, heap.ListPages());
  const size_t num_morsels = (pages.size() + morsel_pages - 1) / morsel_pages;
  const size_t num_workers =
      std::max<size_t>(1, std::min(spec.num_workers,
                                   std::max<size_t>(1, num_morsels)));

  Metrics()->queries->Add();
  Metrics()->workers->Add(num_workers);
  Metrics()->morsels->Add(num_morsels);

  // One result slot per morsel: merging in morsel index order reproduces
  // the serial scan order exactly, whichever worker ran which morsel.
  std::vector<std::vector<Tuple>> morsel_results(num_morsels);
  std::atomic<size_t> dispenser{0};
  std::atomic<bool> stop{false};
  std::mutex error_mutex;
  Status first_error;

  auto worker = [&] {
    // Per-worker cursor and callback context; everything else the worker
    // touches (buffer pool, runners, metrics) is shared and thread-safe.
    TableHeap worker_heap(spec.engine, spec.first_page);
    UdfContext ctx(spec.callback_handler);
    ctx.set_callback_quota(spec.callback_quota);
    ctx.set_deadline(spec.deadline);
    ParallelScanSpec local = spec;
    local.batch_size = batch_cap;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t m = dispenser.fetch_add(1, std::memory_order_relaxed);
      if (m >= num_morsels) break;
      const size_t page_begin = m * morsel_pages;
      const size_t page_end = std::min(pages.size(), page_begin + morsel_pages);
      Status s = RunMorsel(local, &worker_heap, pages, page_begin, page_end,
                           &ctx, &morsel_results[m]);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = std::move(s);
        stop.store(true, std::memory_order_relaxed);
        break;
      }
    }
  };

  if (num_workers == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  JAGUAR_RETURN_IF_ERROR(first_error);

  std::vector<Tuple> rows;
  size_t total = 0;
  for (const std::vector<Tuple>& chunk : morsel_results) total += chunk.size();
  rows.reserve(total);
  for (std::vector<Tuple>& chunk : morsel_results) {
    for (Tuple& t : chunk) rows.push_back(std::move(t));
  }
  Metrics()->tuples->Add(rows.size());
  return rows;
}

}  // namespace exec
}  // namespace jaguar
