#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "storage/table_heap.h"

namespace jaguar {
namespace exec {

namespace {

struct ParallelMetrics {
  obs::Counter* queries;
  obs::Counter* workers;
  obs::Counter* morsels;
  obs::Counter* tuples;
  obs::Counter* agg_queries;
  obs::Counter* agg_parallel_queries;
  obs::Counter* sort_queries;
  obs::Counter* sort_parallel_queries;
  obs::Counter* sort_topk_queries;
};

ParallelMetrics* Metrics() {
  static ParallelMetrics* m = [] {
    obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
    return new ParallelMetrics{
        reg->GetCounter("exec.parallel.queries"),
        reg->GetCounter("exec.parallel.workers"),
        reg->GetCounter("exec.parallel.morsels"),
        reg->GetCounter("exec.parallel.tuples"),
        reg->GetCounter("exec.agg.queries"),
        reg->GetCounter("exec.agg.parallel_queries"),
        reg->GetCounter("exec.sort.queries"),
        reg->GetCounter("exec.sort.parallel_queries"),
        reg->GetCounter("exec.sort.topk_queries"),
    };
  }();
  return m;
}

/// Page-chain split shared by every morsel-driven plan shape.
struct MorselPlan {
  std::vector<PageId> pages;
  size_t morsel_pages = 1;
  size_t num_morsels = 0;
  size_t num_workers = 1;
};

Result<MorselPlan> PlanMorsels(StorageEngine* engine, PageId first_page,
                               size_t morsel_pages, size_t num_workers) {
  MorselPlan plan;
  plan.morsel_pages = morsel_pages > 0 ? morsel_pages : 1;
  TableHeap heap(engine, first_page);
  JAGUAR_ASSIGN_OR_RETURN(plan.pages, heap.ListPages());
  plan.num_morsels =
      (plan.pages.size() + plan.morsel_pages - 1) / plan.morsel_pages;
  plan.num_workers = std::max<size_t>(
      1, std::min(num_workers, std::max<size_t>(1, plan.num_morsels)));
  return plan;
}

/// Per-morsel work: `m` is the morsel index, [page_begin, page_end) its
/// slice of the page chain; `heap` and `ctx` are this worker's private
/// cursor and UDF context.
using MorselFn = std::function<Status(size_t m, size_t page_begin,
                                      size_t page_end, TableHeap* heap,
                                      UdfContext* ctx)>;

/// Launches workers pulling morsel indices from an atomic dispenser and
/// running `fn` on each. First error wins and cancels remaining morsels.
Status DriveMorsels(StorageEngine* engine, PageId first_page,
                    const MorselPlan& plan, UdfCallbackHandler* handler,
                    uint64_t callback_quota, const QueryDeadline* deadline,
                    const MorselFn& fn) {
  Metrics()->queries->Add();
  Metrics()->workers->Add(plan.num_workers);
  Metrics()->morsels->Add(plan.num_morsels);

  std::atomic<size_t> dispenser{0};
  std::atomic<bool> stop{false};
  std::mutex error_mutex;
  Status first_error;

  auto worker = [&] {
    // Per-worker cursor and callback context; everything else the worker
    // touches (buffer pool, runners, metrics) is shared and thread-safe.
    TableHeap worker_heap(engine, first_page);
    UdfContext ctx(handler);
    ctx.set_callback_quota(callback_quota);
    ctx.set_deadline(deadline);
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t m = dispenser.fetch_add(1, std::memory_order_relaxed);
      if (m >= plan.num_morsels) break;
      const size_t page_begin = m * plan.morsel_pages;
      const size_t page_end =
          std::min(plan.pages.size(), page_begin + plan.morsel_pages);
      Status s = fn(m, page_begin, page_end, &worker_heap, &ctx);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = std::move(s);
        stop.store(true, std::memory_order_relaxed);
        break;
      }
    }
  };

  if (plan.num_workers == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(plan.num_workers);
    for (size_t w = 0; w < plan.num_workers; ++w) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  return first_error;
}

/// Scans one morsel batch-at-a-time, applies the predicate (UDFs cross once
/// per batch) and hands each batch of surviving tuples to `on_batch`.
Status ScanMorselBatches(
    TableHeap* heap, const std::vector<PageId>& pages, size_t page_begin,
    size_t page_end, size_t batch_size, const BoundExpr* predicate,
    UdfContext* ctx, const QueryDeadline* deadline,
    const std::function<Status(std::vector<Tuple>*)>& on_batch) {
  const size_t batch_cap = batch_size > 0 ? batch_size : 1;
  std::vector<Tuple> batch;
  batch.reserve(batch_cap);
  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    // Per-batch cancellation point: an expired deadline stops this worker
    // before the next round of (potentially expensive) UDF evaluation.
    JAGUAR_RETURN_IF_ERROR(CheckDeadline(deadline));
    std::vector<Tuple> survivors;
    if (predicate != nullptr) {
      JAGUAR_ASSIGN_OR_RETURN(std::vector<char> passes,
                              EvalPredicateBatch(*predicate, batch, ctx));
      for (size_t i = 0; i < batch.size(); ++i) {
        if (passes[i]) survivors.push_back(std::move(batch[i]));
      }
    } else {
      survivors = std::move(batch);
    }
    batch.clear();
    if (survivors.empty()) return Status::OK();
    return on_batch(&survivors);
  };
  BufferPool* pool = heap->engine()->buffer_pool();
  const size_t readahead = pool->readahead_depth();
  for (size_t p = page_begin; p < page_end; ++p) {
    if (readahead > 0) {
      // The page list is precomputed, so hint the next K pages of this
      // morsel directly instead of walking chain links.
      const size_t hint_end = std::min(page_end, p + 1 + readahead);
      if (p + 1 < hint_end) pool->Prefetch(&pages[p + 1], hint_end - p - 1);
    }
    TableHeap::Iterator it = heap->ScanPage(pages[p]);
    while (true) {
      JAGUAR_ASSIGN_OR_RETURN(auto rec, it.Next());
      if (!rec.has_value()) break;
      JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
      batch.push_back(std::move(t));
      if (batch.size() >= batch_cap) {
        JAGUAR_RETURN_IF_ERROR(flush());
      }
    }
  }
  return flush();
}

}  // namespace

Result<std::vector<Tuple>> RunParallelScan(const ParallelScanSpec& spec) {
  if (spec.engine == nullptr || spec.out_exprs == nullptr) {
    return InvalidArgument("parallel scan spec is missing engine or exprs");
  }
  JAGUAR_ASSIGN_OR_RETURN(
      MorselPlan plan, PlanMorsels(spec.engine, spec.first_page,
                                   spec.morsel_pages, spec.num_workers));

  // One result slot per morsel: merging in morsel index order reproduces
  // the serial scan order exactly, whichever worker ran which morsel.
  std::vector<std::vector<Tuple>> morsel_results(plan.num_morsels);
  JAGUAR_RETURN_IF_ERROR(DriveMorsels(
      spec.engine, spec.first_page, plan, spec.callback_handler,
      spec.callback_quota, spec.deadline,
      [&](size_t m, size_t page_begin, size_t page_end, TableHeap* heap,
          UdfContext* ctx) -> Status {
        std::vector<Tuple>* out = &morsel_results[m];
        return ScanMorselBatches(
            heap, plan.pages, page_begin, page_end, spec.batch_size,
            spec.predicate, ctx, spec.deadline,
            [&](std::vector<Tuple>* survivors) -> Status {
              std::vector<std::vector<Value>> columns;
              columns.reserve(spec.out_exprs->size());
              for (const BoundExprPtr& e : *spec.out_exprs) {
                JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> column,
                                        EvalBatch(*e, *survivors, ctx));
                columns.push_back(std::move(column));
              }
              for (size_t row = 0; row < survivors->size(); ++row) {
                std::vector<Value> values;
                values.reserve(columns.size());
                for (std::vector<Value>& column : columns) {
                  values.push_back(std::move(column[row]));
                }
                out->push_back(Tuple(std::move(values)));
              }
              return Status::OK();
            });
      }));

  std::vector<Tuple> rows;
  size_t total = 0;
  for (const std::vector<Tuple>& chunk : morsel_results) total += chunk.size();
  rows.reserve(total);
  for (std::vector<Tuple>& chunk : morsel_results) {
    if (spec.limit >= 0 && rows.size() >= static_cast<size_t>(spec.limit)) {
      break;
    }
    for (Tuple& t : chunk) {
      if (spec.limit >= 0 && rows.size() >= static_cast<size_t>(spec.limit)) {
        break;
      }
      rows.push_back(std::move(t));
    }
  }
  Metrics()->tuples->Add(rows.size());
  return rows;
}

Result<std::vector<Tuple>> RunParallelAggregate(
    const ParallelAggregateSpec& spec) {
  if (spec.engine == nullptr || spec.plan == nullptr) {
    return InvalidArgument("parallel aggregate spec is missing engine or plan");
  }
  JAGUAR_ASSIGN_OR_RETURN(
      MorselPlan plan, PlanMorsels(spec.engine, spec.first_page,
                                   spec.morsel_pages, spec.num_workers));
  Metrics()->agg_queries->Add();
  Metrics()->agg_parallel_queries->Add();

  // One partial aggregator per morsel. Merging the partials in morsel
  // index order keeps min/max tie-breaks and float-sum addition order
  // deterministic regardless of worker scheduling.
  std::vector<std::unique_ptr<HashAggregator>> partials(plan.num_morsels);
  JAGUAR_RETURN_IF_ERROR(DriveMorsels(
      spec.engine, spec.first_page, plan, spec.callback_handler,
      spec.callback_quota, spec.deadline,
      [&](size_t m, size_t page_begin, size_t page_end, TableHeap* heap,
          UdfContext* ctx) -> Status {
        auto partial = std::make_unique<HashAggregator>(spec.plan);
        JAGUAR_RETURN_IF_ERROR(ScanMorselBatches(
            heap, plan.pages, page_begin, page_end, spec.batch_size,
            spec.predicate, ctx, spec.deadline,
            [&](std::vector<Tuple>* survivors) -> Status {
              return partial->ConsumeBatch(*survivors, ctx);
            }));
        partials[m] = std::move(partial);
        return Status::OK();
      }));

  HashAggregator merged(spec.plan);
  for (std::unique_ptr<HashAggregator>& partial : partials) {
    JAGUAR_RETURN_IF_ERROR(merged.MergeFrom(partial.get(), spec.deadline));
  }
  return merged.Finalize(spec.deadline);
}

Result<std::vector<Tuple>> RunParallelSort(const ParallelSortSpec& spec) {
  if (spec.engine == nullptr || spec.order_key == nullptr ||
      spec.out_exprs == nullptr) {
    return InvalidArgument("parallel sort spec is missing engine or exprs");
  }
  JAGUAR_ASSIGN_OR_RETURN(
      MorselPlan plan, PlanMorsels(spec.engine, spec.first_page,
                                   spec.morsel_pages, spec.num_workers));
  Metrics()->sort_queries->Add();
  Metrics()->sort_parallel_queries->Add();
  if (spec.limit >= 0) Metrics()->sort_topk_queries->Add();

  // One sorted run per morsel (run id = morsel index, so tie-breaks match
  // serial scan order); each run is top-k-bounded when LIMIT is set.
  std::vector<std::vector<Sorter::Entry>> runs(plan.num_morsels);
  JAGUAR_RETURN_IF_ERROR(DriveMorsels(
      spec.engine, spec.first_page, plan, spec.callback_handler,
      spec.callback_quota, spec.deadline,
      [&](size_t m, size_t page_begin, size_t page_end, TableHeap* heap,
          UdfContext* ctx) -> Status {
        Sorter sorter(spec.descending, spec.limit, /*run_id=*/m);
        JAGUAR_RETURN_IF_ERROR(ScanMorselBatches(
            heap, plan.pages, page_begin, page_end, spec.batch_size,
            spec.predicate, ctx, spec.deadline,
            [&](std::vector<Tuple>* survivors) -> Status {
              return SortConsumeBatch(&sorter, *spec.order_key,
                                      *spec.out_exprs, *survivors, ctx);
            }));
        JAGUAR_RETURN_IF_ERROR(sorter.Finish());
        runs[m] = sorter.TakeEntries();
        return Status::OK();
      }));

  return Sorter::MergeRuns(std::move(runs), spec.descending, spec.limit,
                           spec.deadline);
}

}  // namespace exec
}  // namespace jaguar
