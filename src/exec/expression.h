#ifndef JAGUAR_EXEC_EXPRESSION_H_
#define JAGUAR_EXEC_EXPRESSION_H_

/// \file expression.h
/// Bound (resolved, type-checked) expressions and their evaluator.
///
/// The binder turns a parsed `sql::Expr` into a `BoundExpr`: column references
/// become column indices, and function calls are resolved to `UdfRunner`
/// instances through a `UdfResolver`. Binding happens once per query; the
/// evaluator then runs per tuple — which is where the paper's per-invocation
/// UDF costs live.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "udf/udf.h"

namespace jaguar {
namespace exec {

using jaguar::UdfResolver;

enum class BoundExprKind : uint8_t {
  kLiteral,
  kColumn,
  kUnary,
  kBinary,
  kCall,
};

struct BoundExpr;
using BoundExprPtr = std::unique_ptr<BoundExpr>;

struct BoundExpr {
  BoundExprKind kind;
  TypeId result_type = TypeId::kNull;

  // kLiteral
  Value literal;

  // kColumn
  size_t column_index = 0;

  // kUnary/kBinary
  sql::UnaryOp unary_op = sql::UnaryOp::kNeg;
  sql::BinaryOp binary_op = sql::BinaryOp::kAdd;
  BoundExprPtr left;
  BoundExprPtr right;

  // kCall
  std::string function_name;
  UdfRunner* runner = nullptr;  ///< Owned by the resolver.
  std::vector<BoundExprPtr> args;
};

/// Binds `expr` against `schema`. `table_alias` validates qualified column
/// references (`S.history` requires alias S or the table name). `resolver`
/// may be null, in which case function calls fail to bind.
Result<BoundExprPtr> Bind(const sql::Expr& expr, const Schema& schema,
                          const std::string& table_name,
                          const std::string& table_alias,
                          UdfResolver* resolver);

/// Evaluates a bound expression against one tuple. `ctx` carries the UDF
/// callback channel (may be null for UDF-free expressions).
Result<Value> Eval(const BoundExpr& expr, const Tuple& tuple, UdfContext* ctx);

/// Evaluates `expr` as a predicate: NULL results count as false (SQL's
/// WHERE-clause behavior).
Result<bool> EvalPredicate(const BoundExpr& expr, const Tuple& tuple,
                           UdfContext* ctx);

/// Evaluates `expr` over a batch of tuples, returning one value per tuple in
/// order. Semantically identical to calling `Eval` per tuple — any error
/// fails the whole batch — but UDF call nodes cross the execution boundary
/// once per batch through `UdfRunner::InvokeBatch` instead of once per tuple
/// (the Section 2.5 batching lever). Logical AND/OR fall back to per-tuple
/// evaluation to preserve three-valued short-circuit behavior exactly
/// (including *which* sub-expressions run).
Result<std::vector<Value>> EvalBatch(const BoundExpr& expr,
                                     const std::vector<Tuple>& tuples,
                                     UdfContext* ctx);

/// Batch counterpart of `EvalPredicate`: one pass/fail flag per tuple.
Result<std::vector<char>> EvalPredicateBatch(const BoundExpr& expr,
                                             const std::vector<Tuple>& tuples,
                                             UdfContext* ctx);

}  // namespace exec
}  // namespace jaguar

#endif  // JAGUAR_EXEC_EXPRESSION_H_
