#ifndef JAGUAR_EXEC_SORT_H_
#define JAGUAR_EXEC_SORT_H_

/// \file sort.h
/// Vectorized ORDER BY: a `Sorter` collects (key, projected row) pairs —
/// keys and output expressions are evaluated batch-at-a-time, so UDFs in
/// either cross their design's boundary once per batch — and orders them
/// under a strict total order that reproduces the engine's historical
/// semantics exactly: ascending = (NULL-first key, scan position),
/// descending = the exact reverse. Because scan position breaks every tie,
/// the order is deterministic and a parallel plan that sorts morsel-local
/// runs (run id = morsel index, position = row within the morsel) and
/// k-way-merges them produces byte-identical output to the serial sort.
///
/// With LIMIT n the sorter switches to a bounded top-k heap: only the n
/// best entries are retained while consuming input, instead of
/// materialize-then-full-sort.
///
/// Metrics:
///   exec.sort.queries          ORDER BY queries executed
///   exec.sort.parallel_queries ORDER BY queries on the morsel-parallel path
///   exec.sort.rows             rows fed into sorters
///   exec.sort.topk_queries     queries served by the bounded top-k heap
///   exec.sort.runs_merged      morsel-local sorted runs k-way merged

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "exec/expression.h"
#include "exec/operators.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "udf/udf.h"

namespace jaguar {
namespace exec {

/// Orders sort keys and entries; comparison failures (incomparable types)
/// are captured in `status()` instead of thrown through the sort.
class EntryOrder;

class Sorter {
 public:
  struct Entry {
    Value key;
    uint64_t run = 0;  ///< Morsel index on the parallel path, 0 serially.
    uint64_t pos = 0;  ///< Row position within the run, in scan order.
    Tuple row;
  };

  /// `limit` < 0 = unbounded full sort; >= 0 = bounded top-k heap keeping
  /// only the `limit` entries that come first in output order.
  Sorter(bool descending, int64_t limit, uint64_t run_id = 0);
  ~Sorter();

  Sorter(Sorter&&);
  Sorter& operator=(Sorter&&);

  /// Feeds one (key, projected row) pair, in scan order.
  void Add(Value key, Tuple row);

  /// Orders the retained entries; returns the first comparison error, if
  /// any key pair was incomparable.
  Status Finish();

  /// After Finish: entries in output order (for run merging).
  std::vector<Entry> TakeEntries();

  /// After Finish: projected rows in output order.
  std::vector<Tuple> TakeRows();

  bool bounded() const { return limit_ >= 0; }

  /// K-way-merges per-morsel sorted runs (each already in output order,
  /// with run ids in morsel order) into at most `limit` rows (< 0 = all).
  /// Byte-identical to sorting the concatenated input serially.
  static Result<std::vector<Tuple>> MergeRuns(
      std::vector<std::vector<Entry>> runs, bool descending, int64_t limit,
      const QueryDeadline* deadline);

 private:
  int64_t limit_;
  uint64_t run_;
  uint64_t next_pos_ = 0;
  std::unique_ptr<EntryOrder> order_;
  std::vector<Entry> entries_;  ///< Heap-ordered while bounded.
};

/// Evaluates `key` and `out_exprs` over a batch of input tuples (one
/// boundary crossing per batch for UDFs in either) and feeds the projected
/// rows into `sorter`. Shared by SortOp and the parallel morsel workers.
Status SortConsumeBatch(Sorter* sorter, const BoundExpr& key,
                        const std::vector<BoundExprPtr>& out_exprs,
                        const std::vector<Tuple>& tuples, UdfContext* ctx);

/// Sorts already-materialized rows by `key` bound against their schema —
/// the ORDER-BY-over-aggregate-output path. `limit` >= 0 truncates (top-k);
/// `batch_size` 0 evaluates the key per row instead of batch-at-a-time.
Result<std::vector<Tuple>> SortRows(std::vector<Tuple> rows,
                                    const BoundExpr& key, bool descending,
                                    int64_t limit, UdfContext* ctx,
                                    size_t batch_size,
                                    const QueryDeadline* deadline);

/// Pull-operator for the serial engine path: drains its child, sorts
/// (key, projected row) pairs, and emits the projected rows in order.
/// `batch_size` 0 selects the per-tuple scalar pipeline.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, BoundExprPtr order_key,
         std::vector<BoundExprPtr> out_exprs, Schema out_schema,
         bool descending, int64_t limit, UdfContext* ctx, size_t batch_size,
         const QueryDeadline* deadline);

  Result<std::optional<Tuple>> Next() override;
  Status NextBatch(TupleBatch* out) override;
  const Schema& schema() const override { return schema_; }

 private:
  Status DrainChild();

  OperatorPtr child_;
  BoundExprPtr order_key_;
  std::vector<BoundExprPtr> out_exprs_;
  Schema schema_;
  int64_t limit_;
  UdfContext* ctx_;
  size_t batch_size_;
  const QueryDeadline* deadline_;
  Sorter sorter_;
  bool drained_ = false;
  std::vector<Tuple> rows_;
  size_t emit_pos_ = 0;
};

}  // namespace exec
}  // namespace jaguar

#endif  // JAGUAR_EXEC_SORT_H_
