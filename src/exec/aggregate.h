#ifndef JAGUAR_EXEC_AGGREGATE_H_
#define JAGUAR_EXEC_AGGREGATE_H_

/// \file aggregate.h
/// Vectorized hash aggregation with mergeable accumulators.
///
/// `PlanAggregate` binds a SELECT's GROUP BY keys, aggregate specs and
/// output layout once; a `HashAggregator` then consumes tuples — batch-at-
/// a-time through `EvalBatch`, so UDFs in group keys or aggregate arguments
/// cross their design's protection boundary once per batch — and keeps one
/// accumulator set per distinct key. count/sum/avg/min/max accumulators are
/// all mergeable, which is what makes the morsel-parallel path work:
/// each morsel builds a partial aggregator and the partials are merged in
/// morsel index order, so the combined state (including min/max ties, which
/// keep the first value in scan order, and the floating-point sum order) is
/// deterministic and key-ordered output matches the serial path exactly.
/// For exactly-representable sums (integers, dyadic doubles) parallel
/// output is byte-identical to serial; inexact double sums are still
/// deterministic run-to-run but may differ from serial in the last ulp
/// because partial sums are added in morsel order, not row order.
///
/// Metrics:
///   exec.agg.queries          aggregate queries executed
///   exec.agg.parallel_queries aggregate queries on the morsel-parallel path
///   exec.agg.rows             input rows consumed by aggregators
///   exec.agg.groups           groups emitted by Finalize
///   exec.agg.partial_merges   partial-aggregator merges (parallel phase 2)

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "exec/expression.h"
#include "exec/operators.h"
#include "sql/ast.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "udf/udf.h"

namespace jaguar {
namespace exec {

/// True for the aggregate functions recognized in SELECT items.
bool IsAggregateFunctionName(const std::string& name);

/// True when any select item is an aggregate function call.
bool SelectHasAggregate(const sql::SelectStmt& sel);

enum class AggFn : uint8_t { kCount, kCountStar, kSum, kAvg, kMin, kMax };

/// One aggregate output column: what to compute.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  BoundExprPtr arg;  ///< Null for count(*).
  TypeId out_type = TypeId::kInt;
};

/// Running state of one aggregate over one group. Mergeable: combining two
/// accumulators built over disjoint row sets (in scan order) yields the
/// accumulator of the union.
struct AggAccum {
  int64_t count = 0;
  bool any = false;
  int64_t sum_int = 0;
  double sum_double = 0;
  bool is_double = false;
  Value min_value;
  Value max_value;

  /// Folds one non-NULL-filtered input value in (NULLs are ignored here,
  /// matching SQL aggregate semantics).
  Status Accumulate(const AggSpec& spec, const Value& v);

  /// Merges `other` (built over rows that come *after* this accumulator's
  /// rows in scan order) into this one. Min/max ties keep this side's
  /// value, so in-order merging reproduces serial first-wins behavior.
  Status Merge(const AggSpec& spec, const AggAccum& other);

  Value Finalize(const AggSpec& spec) const;
};

/// How one select item maps into the output row.
struct AggregateOutput {
  bool is_agg;
  size_t index;  ///< Into AggregatePlan::specs or ::group_keys.
};

/// Bound, immutable description of an aggregate query — shared read-only by
/// all workers on the parallel path.
struct AggregatePlan {
  std::vector<BoundExprPtr> group_keys;
  std::vector<std::string> group_texts;  ///< ToString of each GROUP BY key.
  std::vector<AggSpec> specs;
  std::vector<AggregateOutput> outputs;  ///< One per select item, in order.
  Schema out_schema;

  bool implicit_single_group() const { return group_keys.empty(); }
};

/// Binds GROUP BY keys and select items against `input`: aggregates become
/// AggSpecs; every other item must textually match a GROUP BY key.
Result<AggregatePlan> PlanAggregate(const sql::SelectStmt& sel,
                                    const Schema& input,
                                    const std::string& table_name,
                                    const std::string& table_alias,
                                    UdfResolver* resolver);

/// Resolves an ORDER BY over aggregate output: an expression matching a
/// select item (by text or alias) becomes a reference to that output
/// column; anything else is bound against the aggregate's output schema.
Result<BoundExprPtr> BindAggregateOrderKey(const sql::SelectStmt& sel,
                                           const AggregatePlan& plan,
                                           UdfResolver* resolver);

/// Accumulates grouped aggregate state. Group identity is the serialized
/// key-value bytes; `Finalize` emits groups in key-byte order, which is
/// what the serial engine has always produced.
class HashAggregator {
 public:
  explicit HashAggregator(const AggregatePlan* plan);

  /// Vectorized consume: group keys and aggregate arguments are evaluated
  /// with `EvalBatch` (one boundary crossing per batch for UDFs).
  Status ConsumeBatch(const std::vector<Tuple>& tuples, UdfContext* ctx);

  /// Scalar consume for the non-vectorized engine path: per-tuple `Eval`.
  Status ConsumeTuple(const Tuple& tuple, UdfContext* ctx);

  /// Merges (and drains) `other`, whose rows come after this aggregator's
  /// rows in scan order. `deadline` is polled during the merge loop.
  Status MergeFrom(HashAggregator* other, const QueryDeadline* deadline);

  size_t num_groups() const { return groups_.size(); }

  /// Emits one output row per group, ordered by serialized key bytes.
  Result<std::vector<Tuple>> Finalize(const QueryDeadline* deadline);

 private:
  struct Group {
    std::vector<Value> keys;
    std::vector<AggAccum> accums;
  };

  Status AccumulateRow(Group* group, const std::vector<const Value*>& args);
  Group* FindOrCreateGroup(const std::string& key_bytes,
                           std::vector<Value> keys);

  const AggregatePlan* plan_;
  std::unordered_map<std::string, Group> groups_;
};

/// Pull-operator wrapper over HashAggregator for the serial engine path.
/// `batch_size` 0 selects the per-tuple scalar pipeline (non-vectorized
/// engines keep their per-invocation UDF crossing counts); > 0 drains the
/// child batch-at-a-time.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, const AggregatePlan* plan,
                  UdfContext* ctx, size_t batch_size,
                  const QueryDeadline* deadline);

  Result<std::optional<Tuple>> Next() override;
  Status NextBatch(TupleBatch* out) override;
  const Schema& schema() const override { return plan_->out_schema; }

 private:
  Status DrainChild();

  OperatorPtr child_;
  const AggregatePlan* plan_;
  UdfContext* ctx_;
  size_t batch_size_;
  const QueryDeadline* deadline_;
  HashAggregator aggregator_;
  bool drained_ = false;
  std::vector<Tuple> rows_;
  size_t emit_pos_ = 0;
};

}  // namespace exec
}  // namespace jaguar

#endif  // JAGUAR_EXEC_AGGREGATE_H_
