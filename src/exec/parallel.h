#ifndef JAGUAR_EXEC_PARALLEL_H_
#define JAGUAR_EXEC_PARALLEL_H_

/// \file parallel.h
/// Morsel-driven intra-query parallelism for scan, aggregation and sort.
///
/// The table heap's page chain is split into fixed-size *morsels* (runs of
/// consecutive pages); `num_workers` threads pull morsel indices from a
/// shared atomic dispenser and push each morsel's tuples through their own
/// filter/project evaluation — batch-at-a-time, so UDF calls cross their
/// design's boundary once per batch exactly as in the serial vectorized
/// path. Per-morsel results are combined in morsel index order, which makes
/// every plan shape deterministic and byte-identical to serial execution:
///   - scans merge per-morsel projected rows (LIMIT truncates after the
///     merge),
///   - aggregations build one partial hash table per morsel and merge the
///     mergeable accumulators in morsel order (exec/aggregate.h),
///   - sorts build one sorted run per morsel (bounded top-k under LIMIT)
///     and k-way-merge the runs (exec/sort.h).
///
/// Shared state touched by workers (buffer pool, UDF runners + memo,
/// metrics, the JagVM) is thread-safe; each worker gets its own TableHeap
/// cursor and UdfContext (the callback quota applies per worker — contexts
/// are per-invocation state).
///
/// Metrics:
///   exec.parallel.queries   morsel-driven queries run (scan/agg/sort)
///   exec.parallel.workers   worker threads launched (sums over queries)
///   exec.parallel.morsels   morsels dispensed
///   exec.parallel.tuples    tuples produced by parallel scans

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "exec/aggregate.h"
#include "exec/expression.h"
#include "exec/sort.h"
#include "storage/storage_engine.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "udf/udf.h"

namespace jaguar {
namespace exec {

struct ParallelScanSpec {
  StorageEngine* engine = nullptr;
  PageId first_page = kInvalidPageId;
  /// Predicate over the input schema; null = no filter.
  const BoundExpr* predicate = nullptr;
  /// Output expressions over the input schema (the projection).
  const std::vector<BoundExprPtr>* out_exprs = nullptr;
  /// Tuples per evaluation batch (the vectorized-execution batch size).
  size_t batch_size = 256;
  /// Worker threads; must be >= 1 (1 degenerates to a serial scan).
  size_t num_workers = 2;
  /// Heap pages per morsel. Small enough to balance skewed filters, large
  /// enough that the dispenser is not contended.
  size_t morsel_pages = 4;
  /// LIMIT: rows kept after the morsel-order merge (< 0 = all). Workers
  /// still scan every morsel; the truncation happens on merged output, so
  /// the kept prefix is exactly the serial scan's first `limit` rows.
  int64_t limit = -1;
  /// Callback target for UDFs (each worker wraps it in its own UdfContext).
  UdfCallbackHandler* callback_handler = nullptr;
  /// Per-context callback quota (0 = unlimited).
  uint64_t callback_quota = 0;
  /// Query deadline; workers check it between batches and stop the scan
  /// (first error wins) once it expires. Null or inactive = unbounded.
  const QueryDeadline* deadline = nullptr;
};

/// Runs the parallel scan and returns the projected rows in serial scan
/// order. The first worker error cancels the query and is returned.
Result<std::vector<Tuple>> RunParallelScan(const ParallelScanSpec& spec);

struct ParallelAggregateSpec {
  StorageEngine* engine = nullptr;
  PageId first_page = kInvalidPageId;
  const BoundExpr* predicate = nullptr;
  /// Bound aggregate plan (group keys, specs, output layout); shared
  /// read-only by all workers.
  const AggregatePlan* plan = nullptr;
  size_t batch_size = 256;
  size_t num_workers = 2;
  size_t morsel_pages = 4;
  UdfCallbackHandler* callback_handler = nullptr;
  uint64_t callback_quota = 0;
  const QueryDeadline* deadline = nullptr;
};

/// Parallel grouped aggregation: one partial aggregator per morsel, merged
/// in morsel index order, finalized into key-ordered output rows identical
/// to the serial HashAggregateOp (see aggregate.h for the determinism and
/// float-sum caveats).
Result<std::vector<Tuple>> RunParallelAggregate(
    const ParallelAggregateSpec& spec);

struct ParallelSortSpec {
  StorageEngine* engine = nullptr;
  PageId first_page = kInvalidPageId;
  const BoundExpr* predicate = nullptr;
  /// Sort key over the input schema.
  const BoundExpr* order_key = nullptr;
  bool descending = false;
  /// LIMIT (< 0 = all); each morsel run is top-k-bounded and the merge
  /// stops after `limit` rows.
  int64_t limit = -1;
  /// Output expressions over the input schema (the projection).
  const std::vector<BoundExprPtr>* out_exprs = nullptr;
  size_t batch_size = 256;
  size_t num_workers = 2;
  size_t morsel_pages = 4;
  UdfCallbackHandler* callback_handler = nullptr;
  uint64_t callback_quota = 0;
  const QueryDeadline* deadline = nullptr;
};

/// Parallel ORDER BY: one sorted run per morsel (run id = morsel index),
/// k-way merged into output byte-identical to the serial sort.
Result<std::vector<Tuple>> RunParallelSort(const ParallelSortSpec& spec);

}  // namespace exec
}  // namespace jaguar

#endif  // JAGUAR_EXEC_PARALLEL_H_
