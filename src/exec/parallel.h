#ifndef JAGUAR_EXEC_PARALLEL_H_
#define JAGUAR_EXEC_PARALLEL_H_

/// \file parallel.h
/// Morsel-driven intra-query parallelism for scan→filter→project plans.
///
/// The table heap's page chain is split into fixed-size *morsels* (runs of
/// consecutive pages); `num_workers` threads pull morsel indices from a
/// shared atomic dispenser and push each morsel's tuples through their own
/// filter/project evaluation — batch-at-a-time, so UDF calls cross their
/// design's boundary once per batch exactly as in the serial vectorized
/// path. Per-morsel outputs are merged in morsel order, so the result is
/// byte-identical to the serial scan.
///
/// Shared state touched by workers (buffer pool, UDF runners + memo,
/// metrics, the JagVM) is thread-safe; each worker gets its own TableHeap
/// cursor and UdfContext (the callback quota applies per worker — contexts
/// are per-invocation state). Plans with ORDER BY, LIMIT or aggregates fall
/// back to serial execution in the engine.
///
/// Metrics:
///   exec.parallel.queries   parallel scans run
///   exec.parallel.workers   worker threads launched (sums over queries)
///   exec.parallel.morsels   morsels dispensed
///   exec.parallel.tuples    tuples produced by parallel scans

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "exec/expression.h"
#include "storage/storage_engine.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "udf/udf.h"

namespace jaguar {
namespace exec {

struct ParallelScanSpec {
  StorageEngine* engine = nullptr;
  PageId first_page = kInvalidPageId;
  /// Predicate over the input schema; null = no filter.
  const BoundExpr* predicate = nullptr;
  /// Output expressions over the input schema (the projection).
  const std::vector<BoundExprPtr>* out_exprs = nullptr;
  /// Tuples per evaluation batch (the vectorized-execution batch size).
  size_t batch_size = 256;
  /// Worker threads; must be >= 1 (1 degenerates to a serial scan).
  size_t num_workers = 2;
  /// Heap pages per morsel. Small enough to balance skewed filters, large
  /// enough that the dispenser is not contended.
  size_t morsel_pages = 4;
  /// Callback target for UDFs (each worker wraps it in its own UdfContext).
  UdfCallbackHandler* callback_handler = nullptr;
  /// Per-context callback quota (0 = unlimited).
  uint64_t callback_quota = 0;
  /// Query deadline; workers check it between batches and stop the scan
  /// (first error wins) once it expires. Null or inactive = unbounded.
  const QueryDeadline* deadline = nullptr;
};

/// Runs the parallel scan and returns the projected rows in serial scan
/// order. The first worker error cancels the query and is returned.
Result<std::vector<Tuple>> RunParallelScan(const ParallelScanSpec& spec);

}  // namespace exec
}  // namespace jaguar

#endif  // JAGUAR_EXEC_PARALLEL_H_
