#ifndef JAGUAR_EXEC_TUPLE_BATCH_H_
#define JAGUAR_EXEC_TUPLE_BATCH_H_

/// \file tuple_batch.h
/// A fixed-capacity batch of tuples — the unit of the vectorized execution
/// path (Section 2.5's batching idea, MonetDB/X100-style). Operators fill a
/// `TupleBatch` in `Operator::NextBatch`; an empty batch signals end of
/// stream. The capacity is chosen by the query driver (engine option
/// `batch_size`, default `kDefaultBatchSize`) and flows down the operator
/// tree with the batch object itself.

#include <cstddef>
#include <utility>
#include <vector>

#include "types/tuple.h"

namespace jaguar {
namespace exec {

/// Default number of tuples per batch (the engine option overrides it).
inline constexpr size_t kDefaultBatchSize = 256;

class TupleBatch {
 public:
  explicit TupleBatch(size_t capacity = kDefaultBatchSize)
      : capacity_(capacity == 0 ? 1 : capacity) {
    tuples_.reserve(capacity_);
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  bool full() const { return tuples_.size() >= capacity_; }

  void Add(Tuple tuple) { tuples_.push_back(std::move(tuple)); }
  void Clear() { tuples_.clear(); }

  Tuple& operator[](size_t i) { return tuples_[i]; }
  const Tuple& operator[](size_t i) const { return tuples_[i]; }

  std::vector<Tuple>& tuples() { return tuples_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

 private:
  size_t capacity_;
  std::vector<Tuple> tuples_;
};

}  // namespace exec
}  // namespace jaguar

#endif  // JAGUAR_EXEC_TUPLE_BATCH_H_
