#ifndef JAGUAR_EXEC_INDEX_SCAN_H_
#define JAGUAR_EXEC_INDEX_SCAN_H_

/// \file index_scan.h
/// Index scans and the one planner rule jaguar has.
///
/// `PickIndexScan` looks at a bound WHERE clause's top-level AND chain for a
/// conjunct of the form `<column> <cmp> <literal>` (either side) where the
/// column has a B+-tree index and the literal's type matches the column's
/// exactly. The matched conjunct is *removed* from the predicate — the index
/// probe guarantees it — and everything else stays behind as the residual
/// filter, evaluated only on the survivors. That is the paper-motivated win:
/// an expensive UDF predicate written before the indexable one no longer
/// runs on every tuple of the relation.
///
/// Equality conjuncts are preferred over range conjuncts; among equals, the
/// first in writing order wins. Correctness of removing the conjunct relies
/// on index semantics matching predicate semantics: NULL keys are never
/// stored (a NULL comparison is unknown → WHERE-false), and bounds compare
/// with `Value::Compare` exactly like the evaluator.
///
/// Metrics:
///   exec.index.scans        index-scan operators executed
///   exec.index.range_scans  the subset driven by a range (non-equality)
///   exec.index.lookups      record ids produced by index probes
///   exec.index.inserts      entries inserted (maintenance + backfill)
///   exec.index.deletes      entries removed (maintenance)

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/expression.h"
#include "exec/operators.h"
#include "index/btree.h"
#include "storage/table_heap.h"

namespace jaguar {
namespace exec {

/// One indexable column the planner may use (engine-built from the catalog).
struct IndexCandidate {
  size_t column = 0;
  PageId root = kInvalidPageId;
  std::string name;
};

/// The planner's decision: which index, with which bounds.
struct IndexPick {
  PageId root = kInvalidPageId;
  std::string index_name;
  size_t column = 0;
  std::optional<BTree::Bound> lower;
  std::optional<BTree::Bound> upper;
  bool equality = false;
};

/// Examines `*where` (may be null). On a hit, returns the pick and replaces
/// `*where` with the residual predicate (null when the indexable conjunct
/// was the whole clause); on a miss `*where` is unchanged.
std::optional<IndexPick> PickIndexScan(
    BoundExprPtr* where, const std::vector<IndexCandidate>& candidates,
    const Schema& schema);

/// Probes the B+-tree once on first pull, then streams the matching heap
/// records in (key, rid) order.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(StorageEngine* engine, PageId index_root, PageId heap_first,
              Schema schema, std::optional<BTree::Bound> lower,
              std::optional<BTree::Bound> upper, bool equality);

  /// The base-class NextBatch (a Next() loop) provides the batch protocol;
  /// there are no per-tuple expressions here to vectorize.
  Result<std::optional<Tuple>> Next() override;
  const Schema& schema() const override { return schema_; }

 private:
  Status EnsureProbed();

  BTree tree_;
  TableHeap heap_;
  Schema schema_;
  std::optional<BTree::Bound> lower_;
  std::optional<BTree::Bound> upper_;
  bool equality_;
  bool probed_ = false;
  std::vector<RecordId> rids_;
  size_t pos_ = 0;
};

}  // namespace exec
}  // namespace jaguar

#endif  // JAGUAR_EXEC_INDEX_SCAN_H_
