#include "exec/sort.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "obs/metrics.h"

namespace jaguar {
namespace exec {

namespace {

struct SortMetricsCounters {
  obs::Counter* queries;
  obs::Counter* parallel_queries;
  obs::Counter* rows;
  obs::Counter* topk_queries;
  obs::Counter* runs_merged;
};

SortMetricsCounters* SortMetrics() {
  static SortMetricsCounters* m = [] {
    obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
    return new SortMetricsCounters{
        reg->GetCounter("exec.sort.queries"),
        reg->GetCounter("exec.sort.parallel_queries"),
        reg->GetCounter("exec.sort.rows"),
        reg->GetCounter("exec.sort.topk_queries"),
        reg->GetCounter("exec.sort.runs_merged"),
    };
  }();
  return m;
}

}  // namespace

/// Strict total order over sort entries. Ascending output is
/// (NULL-first key, run, pos); descending output is its exact reverse —
/// which is what the engine's historical stable_sort + reverse produced.
class EntryOrder {
 public:
  explicit EntryOrder(bool descending) : desc_(descending) {}

  /// True when `a` precedes `b` in output order. A failed key comparison
  /// is captured in status() and orders arbitrarily from then on.
  bool Before(const Sorter::Entry& a, const Sorter::Entry& b) {
    if (!status_.ok()) return false;
    int cmp;
    if (a.key.is_null() || b.key.is_null()) {
      cmp = a.key.is_null() ? (b.key.is_null() ? 0 : -1) : 1;
    } else {
      Result<int> r = a.key.Compare(b.key);
      if (!r.ok()) {
        status_ = r.status();
        return false;
      }
      cmp = *r;
    }
    if (cmp != 0) return desc_ ? cmp > 0 : cmp < 0;
    if (a.run != b.run) return desc_ ? a.run > b.run : a.run < b.run;
    return desc_ ? a.pos > b.pos : a.pos < b.pos;
  }

  const Status& status() const { return status_; }

 private:
  bool desc_;
  Status status_;
};

Sorter::Sorter(bool descending, int64_t limit, uint64_t run_id)
    : limit_(limit),
      run_(run_id),
      order_(std::make_unique<EntryOrder>(descending)) {}

Sorter::~Sorter() = default;
Sorter::Sorter(Sorter&&) = default;
Sorter& Sorter::operator=(Sorter&&) = default;

void Sorter::Add(Value key, Tuple row) {
  SortMetrics()->rows->Add();
  Entry e{std::move(key), run_, next_pos_++, std::move(row)};
  auto before = [ord = order_.get()](const Entry& a, const Entry& b) {
    return ord->Before(a, b);
  };
  if (limit_ < 0) {
    entries_.push_back(std::move(e));
    return;
  }
  if (limit_ == 0) return;
  // Bounded top-k: keep entries_ a max-heap under Before (its top is the
  // entry that comes *latest* in output order) and evict past `limit_`.
  entries_.push_back(std::move(e));
  std::push_heap(entries_.begin(), entries_.end(), before);
  if (entries_.size() > static_cast<size_t>(limit_)) {
    std::pop_heap(entries_.begin(), entries_.end(), before);
    entries_.pop_back();
  }
}

Status Sorter::Finish() {
  auto before = [ord = order_.get()](const Entry& a, const Entry& b) {
    return ord->Before(a, b);
  };
  if (limit_ >= 0) {
    std::sort_heap(entries_.begin(), entries_.end(), before);
  } else {
    // Before is a strict total order (scan position breaks all ties), so a
    // plain sort is deterministic and matches stable_sort + reverse.
    std::sort(entries_.begin(), entries_.end(), before);
  }
  return order_->status();
}

std::vector<Sorter::Entry> Sorter::TakeEntries() { return std::move(entries_); }

std::vector<Tuple> Sorter::TakeRows() {
  std::vector<Tuple> rows;
  rows.reserve(entries_.size());
  for (Entry& e : entries_) rows.push_back(std::move(e.row));
  entries_.clear();
  return rows;
}

Result<std::vector<Tuple>> Sorter::MergeRuns(
    std::vector<std::vector<Entry>> runs, bool descending, int64_t limit,
    const QueryDeadline* deadline) {
  SortMetrics()->runs_merged->Add(runs.size());
  EntryOrder order(descending);
  struct Head {
    size_t run_idx;
    size_t pos;
  };
  // priority_queue pops its "greatest" element; make that the head that
  // comes earliest in output order.
  auto after = [&](const Head& a, const Head& b) {
    return order.Before(runs[b.run_idx][b.pos], runs[a.run_idx][a.pos]);
  };
  std::priority_queue<Head, std::vector<Head>, decltype(after)> heads(after);
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heads.push({r, 0});
  }

  std::vector<Tuple> out;
  size_t steps = 0;
  while (!heads.empty()) {
    if (limit >= 0 && out.size() >= static_cast<size_t>(limit)) break;
    if ((++steps & 1023) == 0) {
      JAGUAR_RETURN_IF_ERROR(CheckDeadline(deadline));
    }
    Head h = heads.top();
    heads.pop();
    JAGUAR_RETURN_IF_ERROR(order.status());
    out.push_back(std::move(runs[h.run_idx][h.pos].row));
    if (++h.pos < runs[h.run_idx].size()) heads.push(h);
  }
  JAGUAR_RETURN_IF_ERROR(order.status());
  return out;
}

Status SortConsumeBatch(Sorter* sorter, const BoundExpr& key,
                        const std::vector<BoundExprPtr>& out_exprs,
                        const std::vector<Tuple>& tuples, UdfContext* ctx) {
  if (tuples.empty()) return Status::OK();
  JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> keys,
                          EvalBatch(key, tuples, ctx));
  std::vector<std::vector<Value>> cols;
  cols.reserve(out_exprs.size());
  for (const BoundExprPtr& e : out_exprs) {
    JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> col,
                            EvalBatch(*e, tuples, ctx));
    cols.push_back(std::move(col));
  }
  for (size_t row = 0; row < tuples.size(); ++row) {
    std::vector<Value> out;
    out.reserve(cols.size());
    for (std::vector<Value>& col : cols) out.push_back(std::move(col[row]));
    sorter->Add(std::move(keys[row]), Tuple(std::move(out)));
  }
  return Status::OK();
}

Result<std::vector<Tuple>> SortRows(std::vector<Tuple> rows,
                                    const BoundExpr& key, bool descending,
                                    int64_t limit, UdfContext* ctx,
                                    size_t batch_size,
                                    const QueryDeadline* deadline) {
  SortMetrics()->queries->Add();
  if (limit >= 0) SortMetrics()->topk_queries->Add();
  Sorter sorter(descending, limit);
  if (batch_size > 0) {
    if (!rows.empty()) {
      JAGUAR_RETURN_IF_ERROR(CheckDeadline(deadline));
      JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> keys,
                              EvalBatch(key, rows, ctx));
      for (size_t i = 0; i < rows.size(); ++i) {
        sorter.Add(std::move(keys[i]), std::move(rows[i]));
      }
    }
  } else {
    size_t n = 0;
    for (Tuple& row : rows) {
      if ((++n & 1023) == 0) {
        JAGUAR_RETURN_IF_ERROR(CheckDeadline(deadline));
      }
      JAGUAR_ASSIGN_OR_RETURN(Value k, Eval(key, row, ctx));
      sorter.Add(std::move(k), std::move(row));
    }
  }
  JAGUAR_RETURN_IF_ERROR(sorter.Finish());
  return sorter.TakeRows();
}

// ---------------------------------------------------------------------------
// SortOp
// ---------------------------------------------------------------------------

SortOp::SortOp(OperatorPtr child, BoundExprPtr order_key,
               std::vector<BoundExprPtr> out_exprs, Schema out_schema,
               bool descending, int64_t limit, UdfContext* ctx,
               size_t batch_size, const QueryDeadline* deadline)
    : child_(std::move(child)),
      order_key_(std::move(order_key)),
      out_exprs_(std::move(out_exprs)),
      schema_(std::move(out_schema)),
      limit_(limit),
      ctx_(ctx),
      batch_size_(batch_size),
      deadline_(deadline),
      sorter_(descending, limit) {}

Status SortOp::DrainChild() {
  if (drained_) return Status::OK();
  drained_ = true;
  SortMetrics()->queries->Add();
  if (limit_ >= 0) SortMetrics()->topk_queries->Add();
  if (batch_size_ > 0) {
    TupleBatch batch(batch_size_);
    while (true) {
      JAGUAR_RETURN_IF_ERROR(CheckDeadline(deadline_));
      JAGUAR_RETURN_IF_ERROR(child_->NextBatch(&batch));
      if (batch.empty()) break;
      JAGUAR_RETURN_IF_ERROR(SortConsumeBatch(&sorter_, *order_key_,
                                              out_exprs_, batch.tuples(),
                                              ctx_));
    }
  } else {
    size_t n = 0;
    while (true) {
      if ((++n & 255) == 0) {
        JAGUAR_RETURN_IF_ERROR(CheckDeadline(deadline_));
      }
      JAGUAR_ASSIGN_OR_RETURN(auto t, child_->Next());
      if (!t.has_value()) break;
      JAGUAR_ASSIGN_OR_RETURN(Value k, Eval(*order_key_, *t, ctx_));
      std::vector<Value> out;
      out.reserve(out_exprs_.size());
      for (const BoundExprPtr& e : out_exprs_) {
        JAGUAR_ASSIGN_OR_RETURN(Value v, Eval(*e, *t, ctx_));
        out.push_back(std::move(v));
      }
      sorter_.Add(std::move(k), Tuple(std::move(out)));
    }
  }
  JAGUAR_RETURN_IF_ERROR(sorter_.Finish());
  rows_ = sorter_.TakeRows();
  return Status::OK();
}

Result<std::optional<Tuple>> SortOp::Next() {
  JAGUAR_RETURN_IF_ERROR(DrainChild());
  if (emit_pos_ >= rows_.size()) return std::optional<Tuple>();
  return std::optional<Tuple>(std::move(rows_[emit_pos_++]));
}

Status SortOp::NextBatch(TupleBatch* out) {
  JAGUAR_RETURN_IF_ERROR(DrainChild());
  out->Clear();
  while (emit_pos_ < rows_.size() && !out->full()) {
    out->Add(std::move(rows_[emit_pos_++]));
  }
  return Status::OK();
}

}  // namespace exec
}  // namespace jaguar
