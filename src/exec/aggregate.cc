#include "exec/aggregate.h"

#include <algorithm>
#include <utility>

#include "common/bytes.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace jaguar {
namespace exec {

namespace {

struct AggMetricsCounters {
  obs::Counter* queries;
  obs::Counter* parallel_queries;
  obs::Counter* rows;
  obs::Counter* groups;
  obs::Counter* partial_merges;
};

AggMetricsCounters* AggMetrics() {
  static AggMetricsCounters* m = [] {
    obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
    return new AggMetricsCounters{
        reg->GetCounter("exec.agg.queries"),
        reg->GetCounter("exec.agg.parallel_queries"),
        reg->GetCounter("exec.agg.rows"),
        reg->GetCounter("exec.agg.groups"),
        reg->GetCounter("exec.agg.partial_merges"),
    };
  }();
  return m;
}

Result<AggFn> ParseAggFn(const std::string& lower) {
  if (lower == "count") return AggFn::kCount;
  if (lower == "count_star") return AggFn::kCountStar;
  if (lower == "sum") return AggFn::kSum;
  if (lower == "avg") return AggFn::kAvg;
  if (lower == "min") return AggFn::kMin;
  if (lower == "max") return AggFn::kMax;
  return InvalidArgument("unknown aggregate function '" + lower + "'");
}

bool ExprContainsAggregate(const sql::Expr& expr) {
  switch (expr.kind) {
    case sql::ExprKind::kFunctionCall:
      if (IsAggregateFunctionName(expr.function)) return true;
      for (const sql::ExprPtr& arg : expr.args) {
        if (arg != nullptr && ExprContainsAggregate(*arg)) return true;
      }
      return false;
    case sql::ExprKind::kUnary:
      return expr.left != nullptr && ExprContainsAggregate(*expr.left);
    case sql::ExprKind::kBinary:
      return (expr.left != nullptr && ExprContainsAggregate(*expr.left)) ||
             (expr.right != nullptr && ExprContainsAggregate(*expr.right));
    default:
      return false;
  }
}

std::string SerializeKey(const std::vector<Value>& keys) {
  BufferWriter w;
  for (const Value& v : keys) v.WriteTo(&w);
  return std::string(reinterpret_cast<const char*>(w.buffer().data()),
                     w.size());
}

}  // namespace

bool IsAggregateFunctionName(const std::string& name) {
  return EqualsIgnoreCase(name, "count") || EqualsIgnoreCase(name, "sum") ||
         EqualsIgnoreCase(name, "avg") || EqualsIgnoreCase(name, "min") ||
         EqualsIgnoreCase(name, "max") || EqualsIgnoreCase(name, "count_star");
}

bool SelectHasAggregate(const sql::SelectStmt& sel) {
  for (const sql::SelectItem& item : sel.items) {
    if (!item.is_star && item.expr->kind == sql::ExprKind::kFunctionCall &&
        IsAggregateFunctionName(item.expr->function)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// AggAccum
// ---------------------------------------------------------------------------

Status AggAccum::Accumulate(const AggSpec& spec, const Value& v) {
  if (v.is_null()) return Status::OK();  // SQL: aggregates ignore NULLs
  ++count;
  if (spec.fn == AggFn::kSum || spec.fn == AggFn::kAvg) {
    JAGUAR_ASSIGN_OR_RETURN(double d, v.CoerceDouble());
    sum_double += d;
    if (v.type() == TypeId::kInt) {
      if (__builtin_add_overflow(sum_int, v.AsInt(), &sum_int)) {
        return OutOfRange("SUM/AVG overflows 64-bit integer range");
      }
    } else {
      is_double = true;
    }
  } else if (spec.fn == AggFn::kMin || spec.fn == AggFn::kMax) {
    if (!any) {
      min_value = v;
      max_value = v;
    } else {
      JAGUAR_ASSIGN_OR_RETURN(int cmp_min, v.Compare(min_value));
      if (cmp_min < 0) min_value = v;
      JAGUAR_ASSIGN_OR_RETURN(int cmp_max, v.Compare(max_value));
      if (cmp_max > 0) max_value = v;
    }
  }
  any = true;
  return Status::OK();
}

Status AggAccum::Merge(const AggSpec& spec, const AggAccum& other) {
  count += other.count;
  if (spec.fn == AggFn::kSum || spec.fn == AggFn::kAvg) {
    // Partial sums are combined in morsel order: deterministic, and exact
    // (hence byte-identical to serial) whenever the additions are exact.
    if (__builtin_add_overflow(sum_int, other.sum_int, &sum_int)) {
      return OutOfRange("SUM/AVG overflows 64-bit integer range");
    }
    sum_double += other.sum_double;
    is_double = is_double || other.is_double;
  } else if ((spec.fn == AggFn::kMin || spec.fn == AggFn::kMax) && other.any) {
    if (!any) {
      min_value = other.min_value;
      max_value = other.max_value;
    } else {
      // Strict comparisons keep this (earlier-in-scan-order) side on ties,
      // matching the serial first-wins behavior.
      JAGUAR_ASSIGN_OR_RETURN(int cmp_min, other.min_value.Compare(min_value));
      if (cmp_min < 0) min_value = other.min_value;
      JAGUAR_ASSIGN_OR_RETURN(int cmp_max, other.max_value.Compare(max_value));
      if (cmp_max > 0) max_value = other.max_value;
    }
  }
  any = any || other.any;
  return Status::OK();
}

Value AggAccum::Finalize(const AggSpec& spec) const {
  if (spec.fn == AggFn::kCount || spec.fn == AggFn::kCountStar) {
    return Value::Int(count);
  }
  if (!any) return Value::Null();  // empty group input
  if (spec.fn == AggFn::kSum) {
    return is_double ? Value::Double(sum_double) : Value::Int(sum_int);
  }
  if (spec.fn == AggFn::kAvg) {
    return Value::Double(sum_double / static_cast<double>(count));
  }
  return spec.fn == AggFn::kMin ? min_value : max_value;
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

Result<AggregatePlan> PlanAggregate(const sql::SelectStmt& sel,
                                    const Schema& input,
                                    const std::string& table_name,
                                    const std::string& table_alias,
                                    UdfResolver* resolver) {
  AggregatePlan plan;
  for (const sql::ExprPtr& key : sel.group_by) {
    JAGUAR_ASSIGN_OR_RETURN(
        BoundExprPtr bound,
        Bind(*key, input, table_name, table_alias, resolver));
    plan.group_keys.push_back(std::move(bound));
    plan.group_texts.push_back(key->ToString());
  }

  std::vector<Column> out_cols;
  for (const sql::SelectItem& item : sel.items) {
    if (item.is_star) {
      return NotSupported("SELECT * cannot be combined with aggregation");
    }
    const bool is_agg = item.expr->kind == sql::ExprKind::kFunctionCall &&
                        IsAggregateFunctionName(item.expr->function);
    if (is_agg) {
      const std::string lower = ToLower(item.expr->function);
      AggSpec spec;
      JAGUAR_ASSIGN_OR_RETURN(spec.fn, ParseAggFn(lower));
      if (spec.fn != AggFn::kCountStar) {
        if (item.expr->args.size() != 1) {
          return InvalidArgument(lower + " takes exactly one argument");
        }
        JAGUAR_ASSIGN_OR_RETURN(
            spec.arg, Bind(*item.expr->args[0], input, table_name,
                           table_alias, resolver));
      }
      if (spec.fn == AggFn::kCount || spec.fn == AggFn::kCountStar) {
        spec.out_type = TypeId::kInt;
      } else if (spec.fn == AggFn::kAvg) {
        spec.out_type = TypeId::kDouble;
      } else if (spec.fn == AggFn::kSum) {
        spec.out_type = spec.arg->result_type == TypeId::kDouble
                            ? TypeId::kDouble
                            : TypeId::kInt;
      } else {
        spec.out_type = spec.arg->result_type;
      }
      std::string name =
          !item.alias.empty()
              ? item.alias
              : (spec.fn == AggFn::kCountStar ? "count(*)"
                                              : item.expr->ToString());
      out_cols.push_back({std::move(name), spec.out_type});
      plan.outputs.push_back({true, plan.specs.size()});
      plan.specs.push_back(std::move(spec));
      continue;
    }
    // Must textually match a GROUP BY expression (standard simple rule).
    const std::string text = item.expr->ToString();
    size_t key_index = plan.group_texts.size();
    for (size_t k = 0; k < plan.group_texts.size(); ++k) {
      if (plan.group_texts[k] == text) {
        key_index = k;
        break;
      }
    }
    if (key_index == plan.group_texts.size()) {
      return NotSupported("select item '" + text +
                          "' is neither an aggregate nor a GROUP BY key");
    }
    std::string name = !item.alias.empty() ? item.alias : text;
    out_cols.push_back(
        {std::move(name), plan.group_keys[key_index]->result_type});
    plan.outputs.push_back({false, key_index});
  }
  plan.out_schema = Schema(std::move(out_cols));
  return plan;
}

Result<BoundExprPtr> BindAggregateOrderKey(const sql::SelectStmt& sel,
                                           const AggregatePlan& plan,
                                           UdfResolver* resolver) {
  const std::string text = sel.order_by->ToString();
  // A key matching a select item (by unparse text or alias) sorts on that
  // output column — this is how ORDER BY composes with aggregates, since
  // aggregate values only exist in the output row.
  for (size_t i = 0; i < sel.items.size(); ++i) {
    const sql::SelectItem& item = sel.items[i];
    if (item.is_star) continue;
    if ((!item.alias.empty() && item.alias == text) ||
        item.expr->ToString() == text) {
      auto col = std::make_unique<BoundExpr>();
      col->kind = BoundExprKind::kColumn;
      col->column_index = i;
      col->result_type = plan.out_schema.column(i).type;
      return col;
    }
  }
  if (ExprContainsAggregate(*sel.order_by)) {
    return NotSupported("ORDER BY aggregate '" + text +
                        "' must match a select item");
  }
  return Bind(*sel.order_by, plan.out_schema, sel.table, sel.table_alias,
              resolver);
}

// ---------------------------------------------------------------------------
// HashAggregator
// ---------------------------------------------------------------------------

HashAggregator::HashAggregator(const AggregatePlan* plan) : plan_(plan) {
  if (plan_->implicit_single_group()) {
    // The implicit group exists even for empty input: global aggregates
    // always produce one row.
    groups_.emplace("", Group{{}, std::vector<AggAccum>(plan_->specs.size())});
  }
}

HashAggregator::Group* HashAggregator::FindOrCreateGroup(
    const std::string& key_bytes, std::vector<Value> keys) {
  auto [it, inserted] = groups_.try_emplace(key_bytes);
  if (inserted) {
    it->second.keys = std::move(keys);
    it->second.accums.assign(plan_->specs.size(), AggAccum{});
  }
  return &it->second;
}

Status HashAggregator::AccumulateRow(Group* group,
                                     const std::vector<const Value*>& args) {
  for (size_t a = 0; a < plan_->specs.size(); ++a) {
    if (plan_->specs[a].fn == AggFn::kCountStar) {
      ++group->accums[a].count;
      continue;
    }
    JAGUAR_RETURN_IF_ERROR(
        group->accums[a].Accumulate(plan_->specs[a], *args[a]));
  }
  return Status::OK();
}

Status HashAggregator::ConsumeBatch(const std::vector<Tuple>& tuples,
                                    UdfContext* ctx) {
  if (tuples.empty()) return Status::OK();
  AggMetrics()->rows->Add(tuples.size());

  std::vector<std::vector<Value>> key_cols;
  key_cols.reserve(plan_->group_keys.size());
  for (const BoundExprPtr& key : plan_->group_keys) {
    JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> col,
                            EvalBatch(*key, tuples, ctx));
    key_cols.push_back(std::move(col));
  }
  std::vector<std::vector<Value>> arg_cols(plan_->specs.size());
  for (size_t a = 0; a < plan_->specs.size(); ++a) {
    if (plan_->specs[a].arg == nullptr) continue;
    JAGUAR_ASSIGN_OR_RETURN(arg_cols[a],
                            EvalBatch(*plan_->specs[a].arg, tuples, ctx));
  }

  std::vector<const Value*> args(plan_->specs.size(), nullptr);
  for (size_t row = 0; row < tuples.size(); ++row) {
    std::vector<Value> keys;
    keys.reserve(key_cols.size());
    for (std::vector<Value>& col : key_cols) keys.push_back(std::move(col[row]));
    std::string key_bytes = SerializeKey(keys);
    Group* group = FindOrCreateGroup(key_bytes, std::move(keys));
    for (size_t a = 0; a < plan_->specs.size(); ++a) {
      if (plan_->specs[a].arg != nullptr) args[a] = &arg_cols[a][row];
    }
    JAGUAR_RETURN_IF_ERROR(AccumulateRow(group, args));
  }
  return Status::OK();
}

Status HashAggregator::ConsumeTuple(const Tuple& tuple, UdfContext* ctx) {
  AggMetrics()->rows->Add();
  std::vector<Value> keys;
  keys.reserve(plan_->group_keys.size());
  for (const BoundExprPtr& key : plan_->group_keys) {
    JAGUAR_ASSIGN_OR_RETURN(Value v, Eval(*key, tuple, ctx));
    keys.push_back(std::move(v));
  }
  std::string key_bytes = SerializeKey(keys);
  Group* group = FindOrCreateGroup(key_bytes, std::move(keys));
  for (size_t a = 0; a < plan_->specs.size(); ++a) {
    if (plan_->specs[a].fn == AggFn::kCountStar) {
      ++group->accums[a].count;
      continue;
    }
    JAGUAR_ASSIGN_OR_RETURN(Value v, Eval(*plan_->specs[a].arg, tuple, ctx));
    JAGUAR_RETURN_IF_ERROR(group->accums[a].Accumulate(plan_->specs[a], v));
  }
  return Status::OK();
}

Status HashAggregator::MergeFrom(HashAggregator* other,
                                 const QueryDeadline* deadline) {
  AggMetrics()->partial_merges->Add();
  size_t merged = 0;
  for (auto& [key, group] : other->groups_) {
    if ((++merged & 1023) == 0) {
      JAGUAR_RETURN_IF_ERROR(CheckDeadline(deadline));
    }
    auto [it, inserted] = groups_.try_emplace(key);
    if (inserted) {
      it->second = std::move(group);
      continue;
    }
    for (size_t a = 0; a < plan_->specs.size(); ++a) {
      JAGUAR_RETURN_IF_ERROR(
          it->second.accums[a].Merge(plan_->specs[a], group.accums[a]));
    }
  }
  other->groups_.clear();
  return Status::OK();
}

Result<std::vector<Tuple>> HashAggregator::Finalize(
    const QueryDeadline* deadline) {
  AggMetrics()->groups->Add(groups_.size());
  // Emit in serialized-key-byte order — the order the serial engine has
  // always produced (it grouped into an ordered map).
  std::vector<std::pair<const std::string*, Group*>> ordered;
  ordered.reserve(groups_.size());
  for (auto& [key, group] : groups_) ordered.emplace_back(&key, &group);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });

  std::vector<Tuple> rows;
  rows.reserve(ordered.size());
  size_t emitted = 0;
  for (auto& [key, group] : ordered) {
    if ((++emitted & 1023) == 0) {
      JAGUAR_RETURN_IF_ERROR(CheckDeadline(deadline));
    }
    std::vector<Value> row;
    row.reserve(plan_->outputs.size());
    for (const AggregateOutput& out : plan_->outputs) {
      row.push_back(out.is_agg
                        ? group->accums[out.index].Finalize(
                              plan_->specs[out.index])
                        : group->keys[out.index]);
    }
    rows.push_back(Tuple(std::move(row)));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// HashAggregateOp
// ---------------------------------------------------------------------------

HashAggregateOp::HashAggregateOp(OperatorPtr child, const AggregatePlan* plan,
                                 UdfContext* ctx, size_t batch_size,
                                 const QueryDeadline* deadline)
    : child_(std::move(child)),
      plan_(plan),
      ctx_(ctx),
      batch_size_(batch_size),
      deadline_(deadline),
      aggregator_(plan) {}

Status HashAggregateOp::DrainChild() {
  if (drained_) return Status::OK();
  drained_ = true;
  AggMetrics()->queries->Add();
  if (batch_size_ > 0) {
    TupleBatch batch(batch_size_);
    while (true) {
      JAGUAR_RETURN_IF_ERROR(CheckDeadline(deadline_));
      JAGUAR_RETURN_IF_ERROR(child_->NextBatch(&batch));
      if (batch.empty()) break;
      JAGUAR_RETURN_IF_ERROR(aggregator_.ConsumeBatch(batch.tuples(), ctx_));
    }
  } else {
    while (true) {
      JAGUAR_RETURN_IF_ERROR(CheckDeadline(deadline_));
      JAGUAR_ASSIGN_OR_RETURN(auto t, child_->Next());
      if (!t.has_value()) break;
      JAGUAR_RETURN_IF_ERROR(aggregator_.ConsumeTuple(*t, ctx_));
    }
  }
  JAGUAR_ASSIGN_OR_RETURN(rows_, aggregator_.Finalize(deadline_));
  return Status::OK();
}

Result<std::optional<Tuple>> HashAggregateOp::Next() {
  JAGUAR_RETURN_IF_ERROR(DrainChild());
  if (emit_pos_ >= rows_.size()) return std::optional<Tuple>();
  return std::optional<Tuple>(std::move(rows_[emit_pos_++]));
}

Status HashAggregateOp::NextBatch(TupleBatch* out) {
  JAGUAR_RETURN_IF_ERROR(DrainChild());
  out->Clear();
  while (emit_pos_ < rows_.size() && !out->full()) {
    out->Add(std::move(rows_[emit_pos_++]));
  }
  return Status::OK();
}

}  // namespace exec
}  // namespace jaguar
