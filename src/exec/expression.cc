#include "exec/expression.h"

#include "common/string_util.h"

namespace jaguar {
namespace exec {

namespace {

bool IsNumeric(TypeId t) {
  return t == TypeId::kInt || t == TypeId::kDouble || t == TypeId::kBool;
}

bool IsComparisonOp(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kEq:
    case sql::BinaryOp::kNe:
    case sql::BinaryOp::kLt:
    case sql::BinaryOp::kLe:
    case sql::BinaryOp::kGt:
    case sql::BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsLogicalOp(sql::BinaryOp op) {
  return op == sql::BinaryOp::kAnd || op == sql::BinaryOp::kOr;
}

}  // namespace

Result<BoundExprPtr> Bind(const sql::Expr& expr, const Schema& schema,
                          const std::string& table_name,
                          const std::string& table_alias,
                          UdfResolver* resolver) {
  auto bound = std::make_unique<BoundExpr>();
  switch (expr.kind) {
    case sql::ExprKind::kLiteral: {
      bound->kind = BoundExprKind::kLiteral;
      bound->literal = expr.literal;
      bound->result_type = expr.literal.type();
      return bound;
    }
    case sql::ExprKind::kColumnRef: {
      if (!expr.qualifier.empty() &&
          !EqualsIgnoreCase(expr.qualifier, table_alias) &&
          !EqualsIgnoreCase(expr.qualifier, table_name)) {
        return InvalidArgument("unknown table qualifier '" + expr.qualifier +
                               "'");
      }
      bound->kind = BoundExprKind::kColumn;
      JAGUAR_ASSIGN_OR_RETURN(bound->column_index, schema.IndexOf(expr.column));
      bound->result_type = schema.column(bound->column_index).type;
      return bound;
    }
    case sql::ExprKind::kUnary: {
      bound->kind = BoundExprKind::kUnary;
      bound->unary_op = expr.unary_op;
      JAGUAR_ASSIGN_OR_RETURN(
          bound->left,
          Bind(*expr.left, schema, table_name, table_alias, resolver));
      if (expr.unary_op == sql::UnaryOp::kNeg) {
        if (!IsNumeric(bound->left->result_type) &&
            bound->left->result_type != TypeId::kNull) {
          return InvalidArgument("cannot negate " +
                                 std::string(TypeIdToString(
                                     bound->left->result_type)));
        }
        bound->result_type = bound->left->result_type;
      } else {
        bound->result_type = TypeId::kBool;
      }
      return bound;
    }
    case sql::ExprKind::kBinary: {
      bound->kind = BoundExprKind::kBinary;
      bound->binary_op = expr.binary_op;
      JAGUAR_ASSIGN_OR_RETURN(
          bound->left,
          Bind(*expr.left, schema, table_name, table_alias, resolver));
      JAGUAR_ASSIGN_OR_RETURN(
          bound->right,
          Bind(*expr.right, schema, table_name, table_alias, resolver));
      TypeId lt = bound->left->result_type;
      TypeId rt = bound->right->result_type;
      if (IsComparisonOp(expr.binary_op) || IsLogicalOp(expr.binary_op)) {
        bound->result_type = TypeId::kBool;
      } else {
        // Arithmetic.
        if ((!IsNumeric(lt) && lt != TypeId::kNull) ||
            (!IsNumeric(rt) && rt != TypeId::kNull)) {
          return InvalidArgument(
              StringPrintf("cannot apply %s to %s and %s",
                           sql::BinaryOpToString(expr.binary_op),
                           TypeIdToString(lt), TypeIdToString(rt)));
        }
        bound->result_type =
            (lt == TypeId::kDouble || rt == TypeId::kDouble) ? TypeId::kDouble
                                                             : TypeId::kInt;
      }
      return bound;
    }
    case sql::ExprKind::kFunctionCall: {
      if (resolver == nullptr) {
        return NotSupported("function calls are not available here: " +
                            expr.function);
      }
      bound->kind = BoundExprKind::kCall;
      bound->function_name = expr.function;
      std::vector<TypeId> arg_types;
      JAGUAR_ASSIGN_OR_RETURN(
          bound->runner,
          resolver->Resolve(expr.function, &bound->result_type, &arg_types));
      if (expr.args.size() != arg_types.size()) {
        return InvalidArgument(StringPrintf(
            "function %s expects %zu arguments, got %zu",
            expr.function.c_str(), arg_types.size(), expr.args.size()));
      }
      for (const sql::ExprPtr& arg : expr.args) {
        JAGUAR_ASSIGN_OR_RETURN(
            BoundExprPtr bound_arg,
            Bind(*arg, schema, table_name, table_alias, resolver));
        bound->args.push_back(std::move(bound_arg));
      }
      return bound;
    }
  }
  return Internal("unhandled expression kind");
}

namespace {

Result<Value> EvalArithmetic(sql::BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (l.type() == TypeId::kDouble || r.type() == TypeId::kDouble) {
    JAGUAR_ASSIGN_OR_RETURN(double a, l.CoerceDouble());
    JAGUAR_ASSIGN_OR_RETURN(double b, r.CoerceDouble());
    switch (op) {
      case sql::BinaryOp::kAdd: return Value::Double(a + b);
      case sql::BinaryOp::kSub: return Value::Double(a - b);
      case sql::BinaryOp::kMul: return Value::Double(a * b);
      case sql::BinaryOp::kDiv:
        if (b == 0.0) return RuntimeError("division by zero");
        return Value::Double(a / b);
      case sql::BinaryOp::kMod:
        return InvalidArgument("%% is not defined for DOUBLE");
      default: break;
    }
  } else {
    JAGUAR_ASSIGN_OR_RETURN(int64_t a, l.CoerceInt());
    JAGUAR_ASSIGN_OR_RETURN(int64_t b, r.CoerceInt());
    // Integer arithmetic wraps on overflow (two's complement), computed in
    // the unsigned domain so the wrap is defined behavior.
    const uint64_t ua = static_cast<uint64_t>(a);
    const uint64_t ub = static_cast<uint64_t>(b);
    switch (op) {
      case sql::BinaryOp::kAdd:
        return Value::Int(static_cast<int64_t>(ua + ub));
      case sql::BinaryOp::kSub:
        return Value::Int(static_cast<int64_t>(ua - ub));
      case sql::BinaryOp::kMul:
        return Value::Int(static_cast<int64_t>(ua * ub));
      case sql::BinaryOp::kDiv:
        if (b == 0) return RuntimeError("division by zero");
        if (b == -1) return Value::Int(static_cast<int64_t>(-ua));
        return Value::Int(a / b);
      case sql::BinaryOp::kMod:
        if (b == 0) return RuntimeError("modulo by zero");
        if (b == -1) return Value::Int(0);
        return Value::Int(a % b);
      default: break;
    }
  }
  return Internal("unhandled arithmetic op");
}

Result<Value> EvalComparison(sql::BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (op == sql::BinaryOp::kEq) return Value::Bool(l.Equals(r));
  if (op == sql::BinaryOp::kNe) return Value::Bool(!l.Equals(r));
  JAGUAR_ASSIGN_OR_RETURN(int c, l.Compare(r));
  switch (op) {
    case sql::BinaryOp::kLt: return Value::Bool(c < 0);
    case sql::BinaryOp::kLe: return Value::Bool(c <= 0);
    case sql::BinaryOp::kGt: return Value::Bool(c > 0);
    case sql::BinaryOp::kGe: return Value::Bool(c >= 0);
    default: break;
  }
  return Internal("unhandled comparison op");
}

/// Three-valued logic per SQL. NULL is "unknown".
Result<Value> EvalLogical(sql::BinaryOp op, const BoundExpr& le,
                          const BoundExpr& re, const Tuple& tuple,
                          UdfContext* ctx) {
  JAGUAR_ASSIGN_OR_RETURN(Value l, Eval(le, tuple, ctx));
  auto as_tristate = [](const Value& v) -> Result<int> {
    if (v.is_null()) return -1;  // unknown
    if (v.type() != TypeId::kBool) {
      return InvalidArgument("logical operand is not BOOL");
    }
    return v.AsBool() ? 1 : 0;
  };
  JAGUAR_ASSIGN_OR_RETURN(int lt, as_tristate(l));
  if (op == sql::BinaryOp::kAnd && lt == 0) return Value::Bool(false);
  if (op == sql::BinaryOp::kOr && lt == 1) return Value::Bool(true);
  JAGUAR_ASSIGN_OR_RETURN(Value r, Eval(re, tuple, ctx));
  JAGUAR_ASSIGN_OR_RETURN(int rt, as_tristate(r));
  if (op == sql::BinaryOp::kAnd) {
    if (rt == 0) return Value::Bool(false);
    if (lt == -1 || rt == -1) return Value::Null();
    return Value::Bool(true);
  }
  if (rt == 1) return Value::Bool(true);
  if (lt == -1 || rt == -1) return Value::Null();
  return Value::Bool(false);
}

}  // namespace

Result<Value> Eval(const BoundExpr& expr, const Tuple& tuple, UdfContext* ctx) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral:
      return expr.literal;
    case BoundExprKind::kColumn:
      if (expr.column_index >= tuple.num_values()) {
        return Internal("column index out of range");
      }
      return tuple.value(expr.column_index);
    case BoundExprKind::kUnary: {
      JAGUAR_ASSIGN_OR_RETURN(Value v, Eval(*expr.left, tuple, ctx));
      if (v.is_null()) return Value::Null();
      if (expr.unary_op == sql::UnaryOp::kNeg) {
        if (v.type() == TypeId::kDouble) return Value::Double(-v.AsDouble());
        JAGUAR_ASSIGN_OR_RETURN(int64_t i, v.CoerceInt());
        return Value::Int(static_cast<int64_t>(-static_cast<uint64_t>(i)));
      }
      if (v.type() != TypeId::kBool) {
        return InvalidArgument("NOT operand is not BOOL");
      }
      return Value::Bool(!v.AsBool());
    }
    case BoundExprKind::kBinary: {
      if (IsLogicalOp(expr.binary_op)) {
        return EvalLogical(expr.binary_op, *expr.left, *expr.right, tuple,
                           ctx);
      }
      JAGUAR_ASSIGN_OR_RETURN(Value l, Eval(*expr.left, tuple, ctx));
      JAGUAR_ASSIGN_OR_RETURN(Value r, Eval(*expr.right, tuple, ctx));
      if (IsComparisonOp(expr.binary_op)) {
        return EvalComparison(expr.binary_op, l, r);
      }
      return EvalArithmetic(expr.binary_op, l, r);
    }
    case BoundExprKind::kCall: {
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const BoundExprPtr& arg : expr.args) {
        JAGUAR_ASSIGN_OR_RETURN(Value v, Eval(*arg, tuple, ctx));
        args.push_back(std::move(v));
      }
      return expr.runner->Invoke(args, ctx);
    }
  }
  return Internal("unhandled bound expression kind");
}

Result<bool> EvalPredicate(const BoundExpr& expr, const Tuple& tuple,
                           UdfContext* ctx) {
  JAGUAR_ASSIGN_OR_RETURN(Value v, Eval(expr, tuple, ctx));
  if (v.is_null()) return false;
  if (v.type() != TypeId::kBool) {
    return InvalidArgument("WHERE clause is not a boolean expression");
  }
  return v.AsBool();
}

Result<std::vector<Value>> EvalBatch(const BoundExpr& expr,
                                     const std::vector<Tuple>& tuples,
                                     UdfContext* ctx) {
  std::vector<Value> out;
  out.reserve(tuples.size());
  switch (expr.kind) {
    case BoundExprKind::kCall: {
      // The batching payoff: evaluate each argument expression over the
      // whole batch, transpose to per-tuple argument rows, and cross into
      // the UDF once for all of them.
      std::vector<std::vector<Value>> arg_columns;
      arg_columns.reserve(expr.args.size());
      for (const BoundExprPtr& arg : expr.args) {
        JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> column,
                                EvalBatch(*arg, tuples, ctx));
        arg_columns.push_back(std::move(column));
      }
      std::vector<std::vector<Value>> args_batch(tuples.size());
      for (size_t row = 0; row < tuples.size(); ++row) {
        args_batch[row].reserve(arg_columns.size());
        for (std::vector<Value>& column : arg_columns) {
          args_batch[row].push_back(std::move(column[row]));
        }
      }
      return expr.runner->InvokeBatch(args_batch, ctx);
    }
    case BoundExprKind::kBinary:
      if (IsLogicalOp(expr.binary_op)) break;  // per-tuple (short-circuit)
      {
        JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> left,
                                EvalBatch(*expr.left, tuples, ctx));
        JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> right,
                                EvalBatch(*expr.right, tuples, ctx));
        for (size_t row = 0; row < tuples.size(); ++row) {
          Result<Value> v =
              IsComparisonOp(expr.binary_op)
                  ? EvalComparison(expr.binary_op, left[row], right[row])
                  : EvalArithmetic(expr.binary_op, left[row], right[row]);
          JAGUAR_RETURN_IF_ERROR(v.status());
          out.push_back(std::move(*v));
        }
        return out;
      }
    default:
      break;
  }
  // Leaves (literal/column), unary ops and logical ops evaluate per tuple —
  // they cross no boundary, so batching buys nothing, and logical ops must
  // keep their three-valued short-circuit evaluation order.
  for (const Tuple& tuple : tuples) {
    JAGUAR_ASSIGN_OR_RETURN(Value v, Eval(expr, tuple, ctx));
    out.push_back(std::move(v));
  }
  return out;
}

Result<std::vector<char>> EvalPredicateBatch(const BoundExpr& expr,
                                             const std::vector<Tuple>& tuples,
                                             UdfContext* ctx) {
  JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> values,
                          EvalBatch(expr, tuples, ctx));
  std::vector<char> passes;
  passes.reserve(values.size());
  for (const Value& v : values) {
    if (v.is_null()) {
      passes.push_back(0);
      continue;
    }
    if (v.type() != TypeId::kBool) {
      return InvalidArgument("WHERE clause is not a boolean expression");
    }
    passes.push_back(v.AsBool() ? 1 : 0);
  }
  return passes;
}

}  // namespace exec
}  // namespace jaguar
