#include "exec/operators.h"

#include <algorithm>

#include "obs/metrics.h"

namespace jaguar {
namespace exec {

namespace {

/// Per-operator produced-tuple counters; resolved once per operator kind.
obs::Counter* TuplesCounter(const char* op) {
  return obs::MetricsRegistry::Global()->GetCounter(
      std::string("exec.") + op + ".tuples");
}

}  // namespace

Status Operator::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full()) {
    JAGUAR_ASSIGN_OR_RETURN(auto t, Next());
    if (!t.has_value()) break;
    out->Add(std::move(*t));
  }
  return Status::OK();
}

Result<std::optional<Tuple>> SeqScanOp::Next() {
  JAGUAR_ASSIGN_OR_RETURN(auto rec, iter_.Next());
  if (!rec.has_value()) return std::optional<Tuple>();
  JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
  static obs::Counter* tuples = TuplesCounter("seqscan");
  tuples->Add();
  return std::make_optional(std::move(t));
}

Status SeqScanOp::NextBatch(TupleBatch* out) {
  out->Clear();
  static obs::Counter* tuples = TuplesCounter("seqscan");
  while (!out->full()) {
    JAGUAR_ASSIGN_OR_RETURN(auto rec, iter_.Next());
    if (!rec.has_value()) break;
    JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
    tuples->Add();
    out->Add(std::move(t));
  }
  return Status::OK();
}

Result<std::optional<Tuple>> FilterOp::Next() {
  while (true) {
    JAGUAR_ASSIGN_OR_RETURN(auto t, child_->Next());
    if (!t.has_value()) return std::optional<Tuple>();
    JAGUAR_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, *t, ctx_));
    if (pass) {
      static obs::Counter* tuples = TuplesCounter("filter");
      tuples->Add();
      return t;
    }
  }
}

Status FilterOp::NextBatch(TupleBatch* out) {
  out->Clear();
  static obs::Counter* tuples = TuplesCounter("filter");
  TupleBatch input(out->capacity());
  // Pull child batches until at least one tuple passes (or input ends), so a
  // non-empty result is only withheld at true end of stream.
  while (out->empty()) {
    JAGUAR_RETURN_IF_ERROR(child_->NextBatch(&input));
    if (input.empty()) break;
    JAGUAR_ASSIGN_OR_RETURN(std::vector<char> passes,
                            EvalPredicateBatch(*predicate_, input.tuples(),
                                               ctx_));
    for (size_t i = 0; i < input.size(); ++i) {
      if (!passes[i]) continue;
      tuples->Add();
      out->Add(std::move(input[i]));
    }
  }
  return Status::OK();
}

Result<std::optional<Tuple>> ProjectOp::Next() {
  JAGUAR_ASSIGN_OR_RETURN(auto t, child_->Next());
  if (!t.has_value()) return std::optional<Tuple>();
  std::vector<Value> out;
  out.reserve(exprs_.size());
  for (const BoundExprPtr& e : exprs_) {
    JAGUAR_ASSIGN_OR_RETURN(Value v, Eval(*e, *t, ctx_));
    out.push_back(std::move(v));
  }
  static obs::Counter* tuples = TuplesCounter("project");
  tuples->Add();
  return std::make_optional(Tuple(std::move(out)));
}

Status ProjectOp::NextBatch(TupleBatch* out) {
  out->Clear();
  TupleBatch input(out->capacity());
  JAGUAR_RETURN_IF_ERROR(child_->NextBatch(&input));
  if (input.empty()) return Status::OK();
  // One column of results per output expression, then transpose into rows.
  std::vector<std::vector<Value>> columns;
  columns.reserve(exprs_.size());
  for (const BoundExprPtr& e : exprs_) {
    JAGUAR_ASSIGN_OR_RETURN(std::vector<Value> column,
                            EvalBatch(*e, input.tuples(), ctx_));
    columns.push_back(std::move(column));
  }
  static obs::Counter* tuples = TuplesCounter("project");
  for (size_t row = 0; row < input.size(); ++row) {
    std::vector<Value> values;
    values.reserve(columns.size());
    for (std::vector<Value>& column : columns) {
      values.push_back(std::move(column[row]));
    }
    tuples->Add();
    out->Add(Tuple(std::move(values)));
  }
  return Status::OK();
}

Result<std::optional<Tuple>> LimitOp::Next() {
  if (remaining_ <= 0) return std::optional<Tuple>();
  JAGUAR_ASSIGN_OR_RETURN(auto t, child_->Next());
  if (t.has_value()) {
    --remaining_;
    static obs::Counter* tuples = TuplesCounter("limit");
    tuples->Add();
  }
  return t;
}

Status LimitOp::NextBatch(TupleBatch* out) {
  out->Clear();
  if (remaining_ <= 0) return Status::OK();
  // Pull at most `remaining_` tuples so upstream work past the limit is not
  // computed merely to be discarded.
  TupleBatch input(std::min<size_t>(out->capacity(),
                                    static_cast<size_t>(remaining_)));
  JAGUAR_RETURN_IF_ERROR(child_->NextBatch(&input));
  static obs::Counter* tuples = TuplesCounter("limit");
  for (size_t i = 0; i < input.size(); ++i) {
    if (remaining_ <= 0) break;
    --remaining_;
    tuples->Add();
    out->Add(std::move(input[i]));
  }
  return Status::OK();
}

}  // namespace exec
}  // namespace jaguar
