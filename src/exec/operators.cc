#include "exec/operators.h"

#include "obs/metrics.h"

namespace jaguar {
namespace exec {

namespace {

/// Per-operator produced-tuple counters; resolved once per operator kind.
obs::Counter* TuplesCounter(const char* op) {
  return obs::MetricsRegistry::Global()->GetCounter(
      std::string("exec.") + op + ".tuples");
}

}  // namespace

Result<std::optional<Tuple>> SeqScanOp::Next() {
  JAGUAR_ASSIGN_OR_RETURN(auto rec, iter_.Next());
  if (!rec.has_value()) return std::optional<Tuple>();
  JAGUAR_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(Slice(rec->second)));
  static obs::Counter* tuples = TuplesCounter("seqscan");
  tuples->Add();
  return std::make_optional(std::move(t));
}

Result<std::optional<Tuple>> FilterOp::Next() {
  while (true) {
    JAGUAR_ASSIGN_OR_RETURN(auto t, child_->Next());
    if (!t.has_value()) return std::optional<Tuple>();
    JAGUAR_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, *t, ctx_));
    if (pass) {
      static obs::Counter* tuples = TuplesCounter("filter");
      tuples->Add();
      return t;
    }
  }
}

Result<std::optional<Tuple>> ProjectOp::Next() {
  JAGUAR_ASSIGN_OR_RETURN(auto t, child_->Next());
  if (!t.has_value()) return std::optional<Tuple>();
  std::vector<Value> out;
  out.reserve(exprs_.size());
  for (const BoundExprPtr& e : exprs_) {
    JAGUAR_ASSIGN_OR_RETURN(Value v, Eval(*e, *t, ctx_));
    out.push_back(std::move(v));
  }
  static obs::Counter* tuples = TuplesCounter("project");
  tuples->Add();
  return std::make_optional(Tuple(std::move(out)));
}

Result<std::optional<Tuple>> LimitOp::Next() {
  if (remaining_ <= 0) return std::optional<Tuple>();
  JAGUAR_ASSIGN_OR_RETURN(auto t, child_->Next());
  if (t.has_value()) {
    --remaining_;
    static obs::Counter* tuples = TuplesCounter("limit");
    tuples->Add();
  }
  return t;
}

}  // namespace exec
}  // namespace jaguar
