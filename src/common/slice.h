#ifndef JAGUAR_COMMON_SLICE_H_
#define JAGUAR_COMMON_SLICE_H_

/// \file slice.h
/// A non-owning view over a byte range, in the spirit of LevelDB/RocksDB's
/// `Slice`. Used for zero-copy handoff of serialized tuples, class files and
/// wire frames. The referenced bytes must outlive the Slice.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace jaguar {

class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  /// View over a std::string's bytes.
  Slice(const std::string& s)  // NOLINT(google-explicit-constructor)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  /// View over a byte vector.
  Slice(const std::vector<uint8_t>& v)  // NOLINT(google-explicit-constructor)
      : data_(v.data()), size_(v.size()) {}
  /// View over a NUL-terminated C string (excluding the NUL).
  Slice(const char* cstr)  // NOLINT(google-explicit-constructor)
      : data_(reinterpret_cast<const uint8_t*>(cstr)), size_(std::strlen(cstr)) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drops the first `n` bytes (n must be <= size()).
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  /// \return A sub-view [offset, offset+len); clamped to the slice's bounds.
  Slice SubSlice(size_t offset, size_t len) const {
    if (offset > size_) return Slice();
    return Slice(data_ + offset, std::min(len, size_ - offset));
  }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }
  std::vector<uint8_t> ToVector() const {
    return std::vector<uint8_t>(data_, data_ + size_);
  }

  int Compare(const Slice& other) const {
    const size_t min_len = std::min(size_, other.size_);
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = +1;
    }
    return r;
  }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

 private:
  const uint8_t* data_;
  size_t size_;
};

}  // namespace jaguar

#endif  // JAGUAR_COMMON_SLICE_H_
