#ifndef JAGUAR_COMMON_DEADLINE_H_
#define JAGUAR_COMMON_DEADLINE_H_

/// \file deadline.h
/// Query wall-clock deadline token (Section 4 of the paper: the DBMS must be
/// able to *stop* a misbehaving UDF). A `QueryDeadline` is created once per
/// query by the engine and propagated by pointer through the operators, the
/// UDF runners, and the IPC layer. All layers poll it cooperatively; the
/// isolated designs additionally use it to decide when to SIGKILL a wedged
/// executor child (the "watchdog").
///
/// The default-constructed deadline is inactive: `Expired()` is always false
/// and `Check()` always returns OK, so unbounded queries pay only a null/flag
/// test on the hot path.

#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace jaguar {

class QueryDeadline {
 public:
  /// Inactive deadline — never expires.
  QueryDeadline() = default;

  /// \return A deadline expiring `timeout_ms` milliseconds from now.
  /// `timeout_ms <= 0` yields an inactive deadline.
  static QueryDeadline After(int64_t timeout_ms) {
    QueryDeadline d;
    if (timeout_ms > 0) {
      d.active_ = true;
      d.timeout_ms_ = timeout_ms;
      d.expires_at_ = Clock::now() + std::chrono::milliseconds(timeout_ms);
    }
    return d;
  }

  bool active() const { return active_; }
  int64_t timeout_ms() const { return timeout_ms_; }

  bool Expired() const { return active_ && Clock::now() >= expires_at_; }

  /// \return Nanoseconds until expiry; negative once expired. Only meaningful
  /// when `active()`.
  int64_t RemainingNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(expires_at_ -
                                                                Clock::now())
        .count();
  }

  /// \return OK while the deadline has not passed, `DeadlineExceeded`
  /// afterwards. Safe to call on an inactive deadline (always OK).
  Status Check() const {
    if (!Expired()) return Status::OK();
    return DeadlineExceeded("query exceeded its deadline of " +
                            std::to_string(timeout_ms_) + " ms");
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool active_ = false;
  int64_t timeout_ms_ = 0;
  Clock::time_point expires_at_{};
};

/// \return OK if `deadline` is null or not yet expired; the usual pattern for
/// layers that hold an optional `const QueryDeadline*`.
inline Status CheckDeadline(const QueryDeadline* deadline) {
  return deadline ? deadline->Check() : Status::OK();
}

}  // namespace jaguar

#endif  // JAGUAR_COMMON_DEADLINE_H_
