#include "common/status.h"

namespace jaguar {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kSecurityViolation: return "SecurityViolation";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kRuntimeError: return "RuntimeError";
    case StatusCode::kVerificationError: return "VerificationError";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kOutOfRange: return "OutOfRange";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
Status Corruption(std::string msg) {
  return Status(StatusCode::kCorruption, std::move(msg));
}
Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status NotSupported(std::string msg) {
  return Status(StatusCode::kNotSupported, std::move(msg));
}
Status SecurityViolation(std::string msg) {
  return Status(StatusCode::kSecurityViolation, std::move(msg));
}
Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status RuntimeError(std::string msg) {
  return Status(StatusCode::kRuntimeError, std::move(msg));
}
Status VerificationError(std::string msg) {
  return Status(StatusCode::kVerificationError, std::move(msg));
}
Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}

}  // namespace jaguar
