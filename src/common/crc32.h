#ifndef JAGUAR_COMMON_CRC32_H_
#define JAGUAR_COMMON_CRC32_H_

/// \file crc32.h
/// CRC-32 (the reflected 0xEDB88320 polynomial, as used by zlib) over a byte
/// range. Used to frame write-ahead log records so a torn append is detected
/// by the recovery tail scan instead of being replayed as garbage.

#include <array>
#include <cstddef>
#include <cstdint>

namespace jaguar {

namespace internal {
inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace internal

/// CRC of `len` bytes at `data`; `seed` allows incremental computation by
/// passing a previous result.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  const auto& table = internal::Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace jaguar

#endif  // JAGUAR_COMMON_CRC32_H_
