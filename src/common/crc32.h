#ifndef JAGUAR_COMMON_CRC32_H_
#define JAGUAR_COMMON_CRC32_H_

/// \file crc32.h
/// CRC-32 (the reflected 0xEDB88320 polynomial, as used by zlib) over a byte
/// range. Used to frame write-ahead log records so a torn append is detected
/// by the recovery tail scan instead of being replayed as garbage, and to
/// frame IPC ring-buffer records.
///
/// The bulk path uses slicing-by-8 (eight precomputed tables, one 64-bit
/// chunk per iteration) — ~8x the throughput of the classic byte-at-a-time
/// loop while producing bit-identical results, so existing WAL files stay
/// readable. Big-endian hosts fall back to the bytewise loop.

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace jaguar {

namespace internal {
inline const std::array<std::array<uint32_t, 256>, 8>& Crc32Tables() {
  static const std::array<std::array<uint32_t, 256>, 8> tables = [] {
    std::array<std::array<uint32_t, 256>, 8> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    // t[j][i] = CRC of byte i followed by j zero bytes: lets one iteration
    // fold eight input bytes through eight independent table lookups.
    for (uint32_t i = 0; i < 256; ++i) {
      for (int j = 1; j < 8; ++j) {
        t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFF];
      }
    }
    return t;
  }();
  return tables;
}
}  // namespace internal

/// CRC of `len` bytes at `data`; `seed` allows incremental computation by
/// passing a previous result.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  const auto& t = internal::Crc32Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
#endif
  for (size_t i = 0; i < len; ++i) {
    c = t[0][(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace jaguar

#endif  // JAGUAR_COMMON_CRC32_H_
