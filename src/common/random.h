#ifndef JAGUAR_COMMON_RANDOM_H_
#define JAGUAR_COMMON_RANDOM_H_

/// \file random.h
/// A small, fast, deterministic PRNG (xorshift64*) used by workload
/// generators, property tests, and synthetic data (stock histories, images).
/// Deterministic seeding keeps benchmarks and tests reproducible.

#include <cstdint>
#include <string>
#include <vector>

namespace jaguar {

class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL)
      : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  /// \return Next raw 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// \return Uniform value in [0, n); n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// \return Uniform value in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// \return true with probability p (0..1).
  bool Bernoulli(double p) {
    return (Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// \return Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// \return `n` pseudo-random bytes.
  std::vector<uint8_t> Bytes(size_t n) {
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(Next());
    return out;
  }

  /// \return Random lowercase ASCII string of length `n`.
  std::string AlphaString(size_t n) {
    std::string out(n, 'a');
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<char>('a' + Uniform(26));
    return out;
  }

 private:
  uint64_t state_;
};

}  // namespace jaguar

#endif  // JAGUAR_COMMON_RANDOM_H_
