#ifndef JAGUAR_COMMON_BYTES_H_
#define JAGUAR_COMMON_BYTES_H_

/// \file bytes.h
/// Little-endian binary encode/decode helpers shared by tuple serialization,
/// the JagVM class-file format, the IPC shared-memory protocol and the network
/// wire protocol. `BufferWriter` appends to a growable byte vector;
/// `BufferReader` consumes a `Slice` with bounds-checked reads that fail with
/// `Corruption` rather than crashing — untrusted bytes (uploaded class files,
/// network frames) flow through these readers.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace jaguar {

/// Appends fixed-width little-endian integers and length-prefixed blobs to a
/// byte buffer. Two modes share one call-site API:
///   - default: an owned, growable vector (`Release()` hands it off);
///   - fixed: an external caller-provided region (e.g. a shared-memory ring
///     reservation), so serializers write *directly into* their destination.
///     A write past the capacity sets `overflowed()` instead of growing —
///     the caller sizes the region from `SerializedSize` bounds and treats
///     overflow as an internal error.
class BufferWriter {
 public:
  BufferWriter() = default;

  /// Fixed mode over `cap` bytes at `buf` (not owned).
  BufferWriter(uint8_t* buf, size_t cap) : ext_(buf), ext_cap_(cap) {}

  void PutU8(uint8_t v) { Append(&v, 1); }
  void PutU16(uint16_t v) { PutLE(v, 2); }
  void PutU32(uint32_t v) { PutLE(v, 4); }
  void PutU64(uint64_t v) { PutLE(v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }

  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// Raw bytes, no length prefix.
  void PutBytes(Slice s) { Append(s.data(), s.size()); }

  /// u32 length prefix followed by the bytes.
  void PutLengthPrefixed(Slice s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s);
  }
  void PutString(const std::string& s) { PutLengthPrefixed(Slice(s)); }

  /// Overwrites 4 bytes at `offset` with `v`; used to back-patch lengths.
  void PatchU32(size_t offset, uint32_t v) {
    uint8_t* base = ext_ != nullptr ? ext_ : buf_.data();
    for (int i = 0; i < 4; ++i) {
      base[offset + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

  size_t size() const { return ext_ != nullptr ? ext_size_ : buf_.size(); }
  /// Fixed mode only: true once any Put overran the external capacity.
  bool overflowed() const { return overflowed_; }
  /// Owned mode only.
  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  Slice AsSlice() const {
    return ext_ != nullptr ? Slice(ext_, ext_size_) : Slice(buf_);
  }

 private:
  void Append(const uint8_t* p, size_t n) {
    if (ext_ != nullptr) {
      if (ext_size_ + n > ext_cap_) {
        overflowed_ = true;
        return;
      }
      std::memcpy(ext_ + ext_size_, p, n);
      ext_size_ += n;
    } else {
      buf_.insert(buf_.end(), p, p + n);
    }
  }

  void PutLE(uint64_t v, int nbytes) {
    uint8_t tmp[8];
    for (int i = 0; i < nbytes; ++i) {
      tmp[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    Append(tmp, static_cast<size_t>(nbytes));
  }

  std::vector<uint8_t> buf_;
  uint8_t* ext_ = nullptr;
  size_t ext_cap_ = 0;
  size_t ext_size_ = 0;
  bool overflowed_ = false;
};

/// Bounds-checked consumer of a byte slice. Every read either succeeds or
/// returns `Corruption`; the reader never touches memory outside the slice.
class BufferReader {
 public:
  explicit BufferReader(Slice data) : data_(data) {}

  size_t remaining() const { return data_.size(); }
  bool AtEnd() const { return data_.empty(); }

  Result<uint8_t> ReadU8() {
    if (data_.size() < 1) return Truncated("u8");
    uint8_t v = data_[0];
    data_.RemovePrefix(1);
    return v;
  }
  Result<uint16_t> ReadU16() { return ReadLE<uint16_t>(2, "u16"); }
  Result<uint32_t> ReadU32() { return ReadLE<uint32_t>(4, "u32"); }
  Result<uint64_t> ReadU64() { return ReadLE<uint64_t>(8, "u64"); }

  Result<int64_t> ReadI64() {
    JAGUAR_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
    return static_cast<int64_t>(v);
  }
  Result<int32_t> ReadI32() {
    JAGUAR_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
    return static_cast<int32_t>(v);
  }

  Result<double> ReadDouble() {
    JAGUAR_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Reads `n` raw bytes as a view into the underlying slice (zero copy).
  Result<Slice> ReadBytes(size_t n) {
    if (data_.size() < n) return Truncated("bytes");
    Slice out(data_.data(), n);
    data_.RemovePrefix(n);
    return out;
  }

  /// Reads a u32 length prefix followed by that many bytes.
  Result<Slice> ReadLengthPrefixed() {
    JAGUAR_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
    return ReadBytes(len);
  }
  Result<std::string> ReadString() {
    JAGUAR_ASSIGN_OR_RETURN(Slice s, ReadLengthPrefixed());
    return s.ToString();
  }

 private:
  template <typename T>
  Result<T> ReadLE(int nbytes, const char* what) {
    if (data_.size() < static_cast<size_t>(nbytes)) return Truncated(what);
    uint64_t v = 0;
    for (int i = 0; i < nbytes; ++i) {
      v |= static_cast<uint64_t>(data_[i]) << (8 * i);
    }
    data_.RemovePrefix(nbytes);
    return static_cast<T>(v);
  }

  Status Truncated(const char* what) {
    return Corruption(std::string("truncated input while reading ") + what);
  }

  Slice data_;
};

/// Uniform framing for payloads that carry a batch of items: a u32 item
/// count followed by the items. Every batched producer/consumer pair (the
/// isolated-runner request/response protocol, the batching benchmarks) goes
/// through these helpers instead of hand-rolling its own count prefix, so a
/// single-item request is just a batch of one and the decoder rejects
/// implausible counts from a corrupted peer before looping on them.
struct BatchCodec {
  /// Upper bound on a decoded item count; anything larger is treated as
  /// corruption rather than a loop bound.
  static constexpr uint32_t kMaxCount = 1u << 20;

  static void WriteCount(BufferWriter* w, size_t count) {
    w->PutU32(static_cast<uint32_t>(count));
  }

  static Result<uint32_t> ReadCount(BufferReader* r) {
    JAGUAR_ASSIGN_OR_RETURN(uint32_t count, r->ReadU32());
    if (count > kMaxCount) {
      return Corruption("batch count exceeds the framing limit");
    }
    return count;
  }
};

}  // namespace jaguar

#endif  // JAGUAR_COMMON_BYTES_H_
