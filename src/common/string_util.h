#ifndef JAGUAR_COMMON_STRING_UTIL_H_
#define JAGUAR_COMMON_STRING_UTIL_H_

/// \file string_util.h
/// Small string helpers used by the SQL lexer, catalog, and CLI tools.

#include <string>
#include <vector>

namespace jaguar {

/// \return Copy of `s` lower-cased (ASCII only).
std::string ToLower(const std::string& s);
/// \return Copy of `s` upper-cased (ASCII only).
std::string ToUpper(const std::string& s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// \return true if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace jaguar

#endif  // JAGUAR_COMMON_STRING_UTIL_H_
