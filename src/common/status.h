#ifndef JAGUAR_COMMON_STATUS_H_
#define JAGUAR_COMMON_STATUS_H_

/// \file status.h
/// Error handling primitives for the jaguar codebase.
///
/// Jaguar does not use C++ exceptions across module boundaries. Every fallible
/// operation returns a `Status` (for procedures) or a `Result<T>` (for
/// functions producing a value). The `JAGUAR_RETURN_IF_ERROR` and
/// `JAGUAR_ASSIGN_OR_RETURN` macros make propagation terse.

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace jaguar {

/// Broad classification of an error. Mirrors the classes of failure the
/// SIGMOD'98 paper worries about: bad input from untrusted UDF authors,
/// security violations, and resource exhaustion (denial of service).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed something malformed.
  kNotFound = 2,          ///< Named entity (table, class, method...) missing.
  kAlreadyExists = 3,     ///< Unique name collision.
  kIoError = 4,           ///< Disk / socket / shared-memory failure.
  kCorruption = 5,        ///< On-disk or on-wire bytes failed validation.
  kInternal = 6,          ///< Invariant violation inside jaguar itself.
  kNotSupported = 7,      ///< Valid request outside implemented scope.
  kSecurityViolation = 8, ///< Sandbox/security-manager denied an action.
  kResourceExhausted = 9, ///< Quota exceeded (CPU budget, heap, callbacks).
  kRuntimeError = 10,     ///< UDF/VM runtime fault (bounds, null, div-zero).
  kVerificationError = 11,///< Bytecode failed load-time verification.
  kDeadlineExceeded = 12, ///< Query wall-clock deadline passed (cancellation).
  kOutOfRange = 13        ///< Arithmetic/value outside the representable range.
};

/// \return Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. The OK state allocates nothing.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// `kOk` (use the default constructor for success).
  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// \return "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsSecurityViolation() const { return code() == StatusCode::kSecurityViolation; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }
  bool IsRuntimeError() const { return code() == StatusCode::kRuntimeError; }
  bool IsVerificationError() const { return code() == StatusCode::kVerificationError; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors, used throughout the codebase.
Status InvalidArgument(std::string msg);
Status NotFound(std::string msg);
Status AlreadyExists(std::string msg);
Status IoError(std::string msg);
Status Corruption(std::string msg);
Status Internal(std::string msg);
Status NotSupported(std::string msg);
Status SecurityViolation(std::string msg);
Status ResourceExhausted(std::string msg);
Status RuntimeError(std::string msg);
Status VerificationError(std::string msg);
Status DeadlineExceeded(std::string msg);
Status OutOfRange(std::string msg);

/// A value-or-error: holds either a `T` or a non-OK `Status`.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from an error status. `status.ok()` is a programming error and
  /// is converted to an internal error to keep the invariant.
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    if (std::get<Status>(var_).ok()) {
      var_ = Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  /// \return The contained status; OK if this holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  /// Value accessors; only valid when `ok()`.
  const T& value() const& { return std::get<T>(var_); }
  T& value() & { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \return The value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> var_;
};

}  // namespace jaguar

/// Propagates a non-OK `Status` to the caller.
#define JAGUAR_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::jaguar::Status _jaguar_status = (expr);          \
    if (!_jaguar_status.ok()) return _jaguar_status;   \
  } while (false)

#define JAGUAR_CONCAT_IMPL(a, b) a##b
#define JAGUAR_CONCAT(a, b) JAGUAR_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define JAGUAR_ASSIGN_OR_RETURN(lhs, rexpr)                                 \
  JAGUAR_ASSIGN_OR_RETURN_IMPL(JAGUAR_CONCAT(_jaguar_res_, __LINE__), lhs,  \
                               rexpr)

#define JAGUAR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // JAGUAR_COMMON_STATUS_H_
