#ifndef JAGUAR_COMMON_LOGGING_H_
#define JAGUAR_COMMON_LOGGING_H_

/// \file logging.h
/// Minimal leveled logging to stderr plus `JAGUAR_CHECK` invariants. Logging
/// defaults to warnings-and-above so benchmark output stays clean; tests can
/// raise verbosity via `SetLogLevel`.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace jaguar {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Fatal variant: prints and aborts in the destructor.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace jaguar

#define JAGUAR_LOG(level)                                                   \
  if (::jaguar::LogLevel::level >= ::jaguar::GetLogLevel())                 \
  ::jaguar::internal::LogMessage(::jaguar::LogLevel::level, __FILE__,       \
                                 __LINE__)                                  \
      .stream()

/// Hard invariant; aborts the process with a message when violated. Used for
/// programmer errors only — recoverable conditions return Status instead.
#define JAGUAR_CHECK(cond)                                             \
  if (!(cond))                                                         \
  ::jaguar::internal::FatalLogMessage(__FILE__, __LINE__, #cond).stream()

#endif  // JAGUAR_COMMON_LOGGING_H_
