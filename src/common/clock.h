#ifndef JAGUAR_COMMON_CLOCK_H_
#define JAGUAR_COMMON_CLOCK_H_

/// \file clock.h
/// Wall-clock stopwatch used by the benchmark harnesses. The paper reports
/// query response time in seconds; our harnesses measure in nanoseconds and
/// print seconds/milliseconds per series.

#include <chrono>
#include <cstdint>

namespace jaguar {

class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  /// \return Elapsed time since construction or last Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Now() - start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using TimePoint = std::chrono::steady_clock::time_point;
  static TimePoint Now() { return std::chrono::steady_clock::now(); }
  TimePoint start_;
};

}  // namespace jaguar

#endif  // JAGUAR_COMMON_CLOCK_H_
