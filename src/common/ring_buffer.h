#ifndef JAGUAR_COMMON_RING_BUFFER_H_
#define JAGUAR_COMMON_RING_BUFFER_H_

/// \file ring_buffer.h
/// A lock-free single-producer/single-consumer byte ring over a shared-memory
/// region, carrying CRC-framed variable-length records. This is the fast-path
/// transport for the isolated-UDF boundary crossing: the producer serializes
/// a frame *directly into* the ring (zero copies), the consumer reads it *in
/// place* and releases it after decoding, and an uncontended crossing costs
/// zero syscalls — the waiter spins briefly and parks on a futex (or a
/// process-shared semaphore where futexes are unavailable) only when the peer
/// is genuinely slow.
///
/// Layout: a cache-line-separated `Control` block (head/tail cursors and the
/// parking words) followed by a power-of-two data area. Cursors are monotonic
/// 64-bit byte positions; `pos & (capacity-1)` is the buffer index, and
/// `tail - head` is the occupancy, so full/empty are never ambiguous.
///
/// Frame format, 8-byte aligned:
///
///   u32 len | u32 type | u32 crc | payload[len] | pad to 8
///
/// where crc = CRC32(len_le || type_le || payload[0..min(len, kCrcWindow))).
/// A frame never straddles the end of the buffer: when the remaining room
/// cannot hold the frame the producer emits a wrap marker (len = 0xFFFFFFFF)
/// — or nothing at all if the room cannot even hold a header — and both
/// sides skip to the start. A torn or bit-flipped frame fails the CRC (or
/// the length sanity check) and surfaces as Corruption instead of being
/// decoded as garbage; coverage is bounded at kCrcWindow payload bytes so
/// integrity checking stays O(1) per frame (see the constant's comment).
///
/// Memory ordering (the lost-wakeup argument): publishing and parking use a
/// Dekker-style handshake in which all four critical accesses are seq_cst —
/// producer: tail.store; data_seq.fetch_add; consumer_parked.load
/// consumer: consumer_parked.store; data_seq.load; tail.load; futex_wait
/// If the consumer's final tail load misses the producer's store, the
/// consumer's parked store precedes that store in the single total order, so
/// the producer's parked load observes it and issues the wake. If the wake
/// races the consumer into futex_wait, the kernel revalidates data_seq —
/// which the producer bumped before waking — and returns EAGAIN. The
/// symmetric protocol (space_seq/producer_parked) covers a producer waiting
/// for ring space. Every park is additionally bounded by a 100 ms slice, so
/// the ring degrades to polling rather than hanging even if a peer dies
/// between publish and wake.

#include <semaphore.h>
#include <time.h>

#if defined(__linux__) && !defined(JAGUAR_RING_FORCE_SEM_PARK)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#define JAGUAR_RING_FUTEX_PARK 1
#endif

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <deque>
#include <new>
#include <thread>
#include <utility>

#include "common/crc32.h"
#include "common/deadline.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace jaguar {

/// Optional observability hooks; any pointer may be null. `Counter::Add` is
/// inline, so this header adds no link dependency on the obs library.
struct RingStats {
  obs::Counter* bytes = nullptr;   ///< committed bytes incl. framing + pad
  obs::Counter* frames = nullptr;  ///< frames committed
  obs::Counter* wraps = nullptr;   ///< wrap markers / end-of-buffer skips
  obs::Counter* spins = nullptr;   ///< spin iterations while waiting
  obs::Counter* parks = nullptr;   ///< futex/sem waits (the slow-path syscalls)
  obs::Counter* wakes = nullptr;   ///< wakeups issued to a parked peer
};

class SpscRingBuffer {
 public:
  static constexpr uint64_t kHeaderBytes = 12;
  static constexpr uint32_t kWrapMarker = 0xFFFFFFFFu;
  static constexpr uint64_t kAlign = 8;
  static constexpr uint64_t kMinCapacity = 4096;
  /// Payload bytes covered by the frame CRC (beyond the full header). A
  /// bounded window keeps frame-integrity checking O(1) per frame: a
  /// per-byte checksum over megabyte payloads would cost more than the two
  /// memcpys the zero-copy design eliminates, and the producer/consumer
  /// share the same trust domain as the message channel (which checksums
  /// nothing). The window still catches what framing CRCs exist to catch —
  /// torn headers, misaligned reads after a wraparound bug, stray scribbles
  /// over a frame's start — because any such fault corrupts the header or
  /// the leading payload bytes.
  static constexpr uint64_t kCrcWindow = 1024;

  /// One variable-length record, viewed in place. The payload slice points
  /// into the shared mapping and stays valid until `Release(end_pos)`.
  struct Frame {
    uint32_t type = 0;
    Slice payload;
    uint64_t end_pos = 0;  ///< release token (the frame's end cursor)
  };

  /// Bounds one blocking wait. `budget_ns` guards against a dead peer;
  /// `deadline` is the query watchdog hook, re-checked every parked slice
  /// (~100 ms) exactly like the message channel's sem_timedwait loop.
  struct WaitOptions {
    int64_t budget_ns = 30ll * 1000000000;
    const QueryDeadline* deadline = nullptr;
    int spin_limit = 2048;
  };

  /// The shared-memory control block. Producer-written, consumer-written and
  /// parking words sit on separate cache lines so the SPSC hot path never
  /// false-shares. The semaphores exist in every build (layout stability);
  /// they are only posted/waited when futex parking is unavailable.
  struct Control {
    alignas(64) std::atomic<uint64_t> tail;  ///< producer: bytes published
    alignas(64) std::atomic<uint64_t> head;  ///< consumer: bytes released
    alignas(64) std::atomic<uint32_t> data_seq;
    std::atomic<uint32_t> consumer_parked;
    alignas(64) std::atomic<uint32_t> space_seq;
    std::atomic<uint32_t> producer_parked;
    alignas(64) sem_t data_sem;
    sem_t space_sem;
  };

  SpscRingBuffer() = default;

  static constexpr uint64_t Pad(uint64_t n) {
    return (n + (kAlign - 1)) & ~(kAlign - 1);
  }
  static bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
  static uint64_t RoundUpPow2(uint64_t v) {
    uint64_t p = kMinCapacity;
    while (p < v) p <<= 1;
    return p;
  }

  /// Bytes of shared memory one ring needs for `capacity` data bytes.
  static size_t LayoutBytes(uint64_t capacity) {
    return sizeof(Control) + static_cast<size_t>(capacity);
  }

  /// Initializes the control block in `mem` (LayoutBytes(capacity) bytes,
  /// typically inside a MAP_SHARED mapping created before fork) and attaches
  /// this instance to it. `max_payload` is the largest payload Write/Prepare
  /// accepts; the padded frame must fit in half the capacity so two maximal
  /// frames (a pipelined request plus its successor) never deadlock the ring.
  Status Init(void* mem, uint64_t capacity, uint64_t max_payload,
              RingStats stats = {}) {
    if (!IsPow2(capacity) || capacity < kMinCapacity) {
      return InvalidArgument("ring capacity must be a power of two >= 4096");
    }
    if (Pad(kHeaderBytes + max_payload) > capacity / 2) {
      return InvalidArgument(
          "ring max payload must fit in half the ring capacity");
    }
    ctl_ = new (mem) Control();
    ctl_->tail.store(0, std::memory_order_relaxed);
    ctl_->head.store(0, std::memory_order_relaxed);
    ctl_->data_seq.store(0, std::memory_order_relaxed);
    ctl_->consumer_parked.store(0, std::memory_order_relaxed);
    ctl_->space_seq.store(0, std::memory_order_relaxed);
    ctl_->producer_parked.store(0, std::memory_order_relaxed);
    if (::sem_init(&ctl_->data_sem, /*pshared=*/1, 0) != 0 ||
        ::sem_init(&ctl_->space_sem, /*pshared=*/1, 0) != 0) {
      return IoError("sem_init for ring buffer failed");
    }
    data_ = static_cast<uint8_t*>(mem) + sizeof(Control);
    cap_ = capacity;
    mask_ = capacity - 1;
    max_payload_ = max_payload;
    stats_ = stats;
    return Status::OK();
  }

  /// Destroys the process-shared semaphores (creator side only, once the
  /// peer is gone — mirrors ShmChannel teardown).
  void Destroy() {
    if (ctl_ != nullptr) {
      ::sem_destroy(&ctl_->data_sem);
      ::sem_destroy(&ctl_->space_sem);
      ctl_ = nullptr;
    }
  }

  uint64_t capacity() const { return cap_; }
  uint64_t max_payload() const { return max_payload_; }

  // ---------------------------------------------------------------------
  // Producer side
  // ---------------------------------------------------------------------

  /// Reserves a contiguous region for a frame of up to `max_len` payload
  /// bytes and returns the payload pointer — the caller serializes directly
  /// into shared memory and then calls `Commit` with the actual length.
  /// Blocks (spin, then park) while the ring lacks space.
  Result<uint8_t*> Prepare(size_t max_len, const WaitOptions& w) {
    if (max_len > max_payload_) {
      return InvalidArgument(StringPrintf(
          "ring frame of %zu bytes exceeds max payload %llu", max_len,
          static_cast<unsigned long long>(max_payload_)));
    }
    const uint64_t padded = Pad(kHeaderBytes + max_len);
    const uint64_t pos = ctl_->tail.load(std::memory_order_relaxed);
    const uint64_t idx = pos & mask_;
    const uint64_t room = cap_ - idx;
    uint64_t skip = 0;
    bool marker = false;
    if (room < kHeaderBytes) {
      skip = room;  // too small even for a header; both sides skip implicitly
    } else if (room < padded) {
      marker = true;  // room for a header: emit an explicit wrap marker
      skip = room;
    }
    const uint64_t total = skip + padded;
    JAGUAR_RETURN_IF_ERROR(WaitFor(
        [this, pos, total] {
          return cap_ - (pos - ctl_->head.load(std::memory_order_seq_cst)) >=
                 total;
        },
        &ctl_->space_seq, &ctl_->producer_parked, &ctl_->space_sem, w));
    if (marker) {
      StoreU32(data_ + idx, kWrapMarker);
      StoreU32(data_ + idx + 4, 0);
      StoreU32(data_ + idx + 8, 0);
    }
    if (skip != 0) Bump(stats_.wraps);
    prep_base_ = pos + skip;
    prep_skip_ = skip;
    prep_max_ = max_len;
    prep_live_ = true;
    return data_ + (prep_base_ & mask_) + kHeaderBytes;
  }

  /// Publishes the prepared frame with its actual payload length. The wrap
  /// marker (if any) and the frame become visible to the consumer in one
  /// tail store; a parked consumer is woken.
  Status Commit(uint32_t type, size_t actual_len) {
    if (!prep_live_) return Internal("ring Commit without a Prepare");
    if (actual_len > prep_max_) {
      return Internal("ring Commit exceeds the prepared reservation");
    }
    prep_live_ = false;
    const uint64_t idx = prep_base_ & mask_;
    StoreU32(data_ + idx, static_cast<uint32_t>(actual_len));
    StoreU32(data_ + idx + 4, type);
    StoreU32(data_ + idx + 8,
             FrameCrc(type, data_ + idx + kHeaderBytes, actual_len));
    const uint64_t padded = Pad(kHeaderBytes + actual_len);
    ctl_->tail.store(prep_base_ + padded, std::memory_order_seq_cst);
    ctl_->data_seq.fetch_add(1, std::memory_order_seq_cst);
    if (ctl_->consumer_parked.load(std::memory_order_seq_cst) != 0) {
      Wake(&ctl_->data_seq, &ctl_->data_sem);
    }
    Bump(stats_.frames);
    Bump(stats_.bytes, prep_skip_ + padded);
    return Status::OK();
  }

  /// Drops an unpublished reservation (the tail never moved, so the next
  /// Prepare recomputes from the same position).
  void Abort() { prep_live_ = false; }

  /// Copying convenience: Prepare + memcpy + Commit.
  Status Write(uint32_t type, Slice payload, const WaitOptions& w) {
    JAGUAR_ASSIGN_OR_RETURN(uint8_t* buf, Prepare(payload.size(), w));
    if (!payload.empty()) std::memcpy(buf, payload.data(), payload.size());
    return Commit(type, payload.size());
  }

  // ---------------------------------------------------------------------
  // Consumer side
  // ---------------------------------------------------------------------

  /// Blocks for the next frame and returns it as an in-place view. The
  /// consumer may read ahead (several unreleased frames outstanding); space
  /// is recycled only as the oldest unreleased frame is released, so views
  /// stay valid in FIFO order.
  Result<Frame> Read(const WaitOptions& w) {
    while (true) {
      const uint64_t pos = read_pos_;
      JAGUAR_RETURN_IF_ERROR(WaitFor(
          [this, pos] {
            return ctl_->tail.load(std::memory_order_seq_cst) != pos;
          },
          &ctl_->data_seq, &ctl_->consumer_parked, &ctl_->data_sem, w));
      const uint64_t tail = ctl_->tail.load(std::memory_order_acquire);
      const uint64_t idx = pos & mask_;
      const uint64_t room = cap_ - idx;
      if (room < kHeaderBytes) {  // implicit end-of-buffer skip
        read_pos_ = pos + room;
        continue;
      }
      const uint32_t len = LoadU32(data_ + idx);
      if (len == kWrapMarker) {
        read_pos_ = pos + room;
        continue;
      }
      if (len > max_payload_) {
        return Corruption(StringPrintf(
            "ring frame length %u exceeds max payload %llu", len,
            static_cast<unsigned long long>(max_payload_)));
      }
      const uint64_t padded = Pad(kHeaderBytes + len);
      if (tail - pos < padded) {
        return Corruption("ring frame extends past the published tail");
      }
      const uint32_t type = LoadU32(data_ + idx + 4);
      const uint32_t crc = LoadU32(data_ + idx + 8);
      if (crc != FrameCrc(type, data_ + idx + kHeaderBytes, len)) {
        return Corruption("ring frame CRC mismatch (torn or corrupt frame)");
      }
      Frame f;
      f.type = type;
      f.payload = Slice(data_ + idx + kHeaderBytes, len);
      f.end_pos = pos + padded;
      read_pos_ = f.end_pos;
      pending_.emplace_back(f.end_pos, false);
      return f;
    }
  }

  /// Releases the frame whose `end_pos` token this is. Frames may be
  /// released out of read order; the shared head only advances over the
  /// released prefix, so an earlier still-held view is never recycled.
  void Release(uint64_t end_pos) {
    for (auto& e : pending_) {
      if (e.first == end_pos) {
        e.second = true;
        break;
      }
    }
    uint64_t new_head = 0;
    bool advanced = false;
    while (!pending_.empty() && pending_.front().second) {
      new_head = pending_.front().first;
      pending_.pop_front();
      advanced = true;
    }
    if (!advanced) return;
    ctl_->head.store(new_head, std::memory_order_seq_cst);
    ctl_->space_seq.fetch_add(1, std::memory_order_seq_cst);
    if (ctl_->producer_parked.load(std::memory_order_seq_cst) != 0) {
      Wake(&ctl_->space_seq, &ctl_->space_sem);
    }
  }

 private:
  static void StoreU32(uint8_t* p, uint32_t v) {
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
  }
  static uint32_t LoadU32(const uint8_t* p) {
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  }

  static uint32_t FrameCrc(uint32_t type, const uint8_t* payload, size_t len) {
    uint8_t hdr[8];
    StoreU32(hdr, static_cast<uint32_t>(len));
    StoreU32(hdr + 4, type);
    const size_t covered = len < kCrcWindow ? len : kCrcWindow;
    return Crc32(payload, covered, Crc32(hdr, sizeof(hdr)));
  }

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }

  void Bump(obs::Counter* c, uint64_t n = 1) {
    if (c != nullptr) c->Add(n);
  }

  /// One bounded park (~100 ms slice) on `seq` staying at `observed`.
  void ParkSlice(std::atomic<uint32_t>* seq, uint32_t observed, sem_t* sem) {
#ifdef JAGUAR_RING_FUTEX_PARK
    (void)sem;
    struct timespec slice = {0, 100 * 1000 * 1000};
    // FUTEX_WAIT (not PRIVATE): the word lives in a MAP_SHARED mapping used
    // across the parent/child process boundary.
    ::syscall(SYS_futex, reinterpret_cast<uint32_t*>(seq), FUTEX_WAIT,
              observed, &slice, nullptr, 0);
#else
    (void)observed;
    struct timespec abs;
    ::clock_gettime(CLOCK_REALTIME, &abs);
    abs.tv_nsec += 100 * 1000 * 1000;
    if (abs.tv_nsec >= 1000000000) {
      abs.tv_nsec -= 1000000000;
      ++abs.tv_sec;
    }
    while (::sem_timedwait(sem, &abs) != 0 && errno == EINTR) {
    }
#endif
  }

  void Wake(std::atomic<uint32_t>* seq, sem_t* sem) {
#ifdef JAGUAR_RING_FUTEX_PARK
    (void)sem;
    ::syscall(SYS_futex, reinterpret_cast<uint32_t*>(seq), FUTEX_WAKE, 1,
              nullptr, nullptr, 0);
#else
    (void)seq;
    ::sem_post(sem);
#endif
    Bump(stats_.wakes);
  }

  /// Spin-then-park until `ready()` holds, a deadline/budget expires, or a
  /// wait error occurs. `ready` must load the watched cursor with seq_cst
  /// (part of the handshake proof above).
  /// Spinning only ever pays when the peer can make progress on another
  /// CPU; on a single-core host every spin iteration *delays* the peer, so
  /// the waiter parks immediately instead.
  static int EffectiveSpinLimit(int requested) {
    static const bool multicore = std::thread::hardware_concurrency() > 1;
    return multicore ? requested : 0;
  }

  template <typename Ready>
  Status WaitFor(Ready ready, std::atomic<uint32_t>* seq,
                 std::atomic<uint32_t>* parked, sem_t* sem,
                 const WaitOptions& w) {
    if (ready()) return Status::OK();
    JAGUAR_RETURN_IF_ERROR(CheckDeadline(w.deadline));
    const int spin_limit = EffectiveSpinLimit(w.spin_limit);
    for (int i = 0; i < spin_limit; ++i) {
      CpuRelax();
      if (ready()) {
        Bump(stats_.spins, static_cast<uint64_t>(i) + 1);
        return Status::OK();
      }
    }
    Bump(stats_.spins, static_cast<uint64_t>(spin_limit));
    struct timespec start;
    ::clock_gettime(CLOCK_MONOTONIC, &start);
    while (true) {
      parked->store(1, std::memory_order_seq_cst);
      const uint32_t observed = seq->load(std::memory_order_seq_cst);
      if (ready()) {
        parked->store(0, std::memory_order_seq_cst);
        return Status::OK();
      }
      Bump(stats_.parks);
      ParkSlice(seq, observed, sem);
      parked->store(0, std::memory_order_seq_cst);
      if (ready()) return Status::OK();
      // Between slices: the query watchdog first, then the dead-peer budget
      // — expiry mid-wait is detected at most one slice late, exactly the
      // message channel's contract.
      JAGUAR_RETURN_IF_ERROR(CheckDeadline(w.deadline));
      struct timespec now;
      ::clock_gettime(CLOCK_MONOTONIC, &now);
      const int64_t elapsed_ns = (now.tv_sec - start.tv_sec) * 1000000000 +
                                 (now.tv_nsec - start.tv_nsec);
      if (elapsed_ns >= w.budget_ns) {
        return IoError("ring buffer wait timed out (peer dead?)");
      }
    }
  }

  Control* ctl_ = nullptr;
  uint8_t* data_ = nullptr;
  uint64_t cap_ = 0;
  uint64_t mask_ = 0;
  uint64_t max_payload_ = 0;
  RingStats stats_;

  // Producer-local reservation state (each forked process has its own copy;
  // only the producing side of a direction ever touches these).
  uint64_t prep_base_ = 0;
  uint64_t prep_skip_ = 0;
  size_t prep_max_ = 0;
  bool prep_live_ = false;

  // Consumer-local read cursor and outstanding (end_pos, released) frames.
  uint64_t read_pos_ = 0;
  std::deque<std::pair<uint64_t, bool>> pending_;
};

}  // namespace jaguar

#endif  // JAGUAR_COMMON_RING_BUFFER_H_
